package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolcheck enforces the wire pool ownership contract (DESIGN.md,
// "Transport performance model"): a value acquired with wire.GetBuffer or
// wire.GetRecordSlice must, on every control-flow path, either be released
// with the matching Release function or have its ownership transferred
// (returned, sent, stored, or passed to another function). After a release
// the value is dead: any further use is flagged, as is a possible second
// release.
//
// The analysis is intra-procedural and path-sensitive over the AST: if/
// switch/select branches fork the tracking state and merge afterwards.
// Ownership transfer is deliberately conservative — aliasing a tracked
// value, capturing it in a closure, or passing it (not a field of it) to
// any call stops tracking, so the analyzer never second-guesses hand-offs
// like TCP.Send queueing a frame on a peer connection.
var poolcheckAnalyzer = &Analyzer{
	Name: "poolcheck",
	Doc:  "pooled wire.Buffer / []Record values must be released exactly once on every path",
	Run:  runPoolcheck,
}

const wirePkgPath = "rocksteady/internal/wire"

// poolStatus is a bitmask of the states a tracked value may be in across
// the paths that reach a program point.
type poolStatus uint8

const (
	poolLive     poolStatus = 1 << iota // acquired, not yet released
	poolReleased                        // released back to the pool
)

// poolVar is the per-variable tracking record.
type poolVar struct {
	status   poolStatus
	get      string    // acquiring function name (GetBuffer / GetRecordSlice)
	getPos   token.Pos // acquisition site, where leaks are reported
	declPos  token.Pos // position of the acquiring statement (scope checks)
	reported bool      // one leak diagnostic per acquisition
}

type poolState map[types.Object]*poolVar

func (st poolState) clone() poolState {
	out := make(poolState, len(st))
	for k, v := range st {
		c := *v
		out[k] = &c
	}
	return out
}

// merge unions the statuses of two non-terminated paths. A variable only
// one path tracks (the other released-and-rescoped or escaped it) becomes
// untracked: poolcheck reports only must-leaks along fully tracked paths.
func (st poolState) merge(other poolState, vars map[types.Object]*poolVar) poolState {
	out := make(poolState)
	for k, a := range st {
		b, ok := other[k]
		if !ok {
			continue
		}
		m := *a
		m.status = a.status | b.status
		m.reported = a.reported || b.reported
		// Keep the merged record visible to later reports through the
		// shared registry so reported-flags propagate.
		out[k] = &m
		vars[k].reported = m.reported
	}
	return out
}

func runPoolcheck(pass *Pass) {
	analyze := func(body *ast.BlockStmt) {
		pc := &poolChecker{pass: pass, vars: make(map[types.Object]*poolVar)}
		st, terminated := pc.block(body.List, make(poolState))
		if !terminated {
			pc.checkLeaks(st, body.Rbrace)
		}
	}
	// Function literals are analyzed as functions in their own right (a
	// worker closure that acquires a buffer must release it too); the
	// enclosing function's walk stops tracking anything a literal
	// captures, so nothing is double-reported.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyze(n.Body)
				}
			case *ast.FuncLit:
				analyze(n.Body)
			}
			return true
		})
	}
}

type poolChecker struct {
	pass *Pass
	// vars registers every acquisition in the function so a leak is
	// reported at most once per Get call even across forked states.
	vars map[types.Object]*poolVar
}

// getCall returns the pool-acquiring function name if call is
// wire.GetBuffer or wire.GetRecordSlice.
func (pc *poolChecker) getCall(call *ast.CallExpr) (string, bool) {
	for _, name := range []string{"GetBuffer", "GetRecordSlice"} {
		if isPkgFunc(pc.pass, call, wirePkgPath, name) {
			return name, true
		}
	}
	return "", false
}

// releaseCall returns the pool-releasing function name if call is
// wire.ReleaseBuffer or wire.ReleaseRecordSlice.
func (pc *poolChecker) releaseCall(call *ast.CallExpr) (string, bool) {
	for _, name := range []string{"ReleaseBuffer", "ReleaseRecordSlice"} {
		if isPkgFunc(pc.pass, call, wirePkgPath, name) {
			return name, true
		}
	}
	return "", false
}

// checkLeaks reports every variable still (possibly) live when a path
// leaves the function.
func (pc *poolChecker) checkLeaks(st poolState, at token.Pos) {
	for obj, v := range st {
		if v.status&poolLive != 0 && !pc.vars[obj].reported {
			pc.vars[obj].reported = true
			pc.pass.Reportf(v.getPos, "%s from wire.%s is not released on every path to the end of the function", obj.Name(), v.get)
		}
	}
}

// block walks a statement list, returning the out-state and whether every
// path through it terminated (return / panic / branch).
func (pc *poolChecker) block(stmts []ast.Stmt, st poolState) (poolState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = pc.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

// scopedBlock walks a block and, at its close, reports variables acquired
// inside it that are still live — they go out of scope unreleased (this is
// what catches per-iteration leaks in loop bodies).
func (pc *poolChecker) scopedBlock(body *ast.BlockStmt, st poolState) (poolState, bool) {
	out, terminated := pc.block(body.List, st)
	if terminated {
		return out, true
	}
	for obj, v := range out {
		if v.declPos >= body.Pos() && v.declPos <= body.End() {
			if v.status&poolLive != 0 && !pc.vars[obj].reported {
				pc.vars[obj].reported = true
				pc.pass.Reportf(v.getPos, "%s from wire.%s goes out of scope without being released on every path", obj.Name(), v.get)
			}
			delete(out, obj)
		}
	}
	return out, false
}

func (pc *poolChecker) stmt(s ast.Stmt, st poolState) (poolState, bool) {
	switch s := s.(type) {
	case nil:
		return st, false
	case *ast.AssignStmt:
		return pc.assign(s, st), false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Names) == 1 && len(vs.Values) == 1 {
					if call, ok := vs.Values[0].(*ast.CallExpr); ok {
						if get, isGet := pc.getCall(call); isGet {
							pc.track(st, vs.Names[0], get, call.Pos(), s.Pos())
							continue
						}
					}
				}
				for _, v := range vs.Values {
					pc.expr(v, st)
				}
			}
		}
		return st, false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if get, isGet := pc.getCall(call); isGet {
				pc.pass.Reportf(call.Pos(), "result of wire.%s is discarded: the pooled value leaks", get)
				for _, a := range call.Args {
					pc.expr(a, st)
				}
				return st, false
			}
		}
		pc.expr(s.X, st)
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			pc.escapeOrUse(r, st)
		}
		pc.checkLeaks(st, s.Pos())
		return st, true
	case *ast.IfStmt:
		st, _ = pc.stmt(s.Init, st)
		pc.expr(s.Cond, st)
		thenSt, thenTerm := pc.scopedBlock(s.Body, st.clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = pc.stmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return thenSt.merge(elseSt, pc.vars), false
		}
	case *ast.BlockStmt:
		return pc.scopedBlock(s, st)
	case *ast.ForStmt:
		st, _ = pc.stmt(s.Init, st)
		pc.expr(s.Cond, st)
		bodySt, bodyTerm := pc.scopedBlock(s.Body, st.clone())
		if !bodyTerm {
			bodySt, _ = pc.stmt(s.Post, bodySt)
			st = st.merge(bodySt, pc.vars)
		}
		return st, false
	case *ast.RangeStmt:
		pc.expr(s.X, st)
		bodySt, bodyTerm := pc.scopedBlock(s.Body, st.clone())
		if !bodyTerm {
			st = st.merge(bodySt, pc.vars)
		}
		return st, false
	case *ast.SwitchStmt:
		st, _ = pc.stmt(s.Init, st)
		pc.expr(s.Tag, st)
		return pc.clauses(s.Body, st, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		st, _ = pc.stmt(s.Init, st)
		if as, ok := s.Assign.(*ast.AssignStmt); ok {
			for _, r := range as.Rhs {
				pc.expr(r, st)
			}
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			pc.expr(es.X, st)
		}
		return pc.clauses(s.Body, st, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		return pc.clauses(s.Body, st, true)
	case *ast.SendStmt:
		pc.expr(s.Chan, st)
		pc.escapeOrUse(s.Value, st)
		return st, false
	case *ast.DeferStmt:
		// defer wire.Release*(v) guarantees release on every path: stop
		// tracking v. Other defers are ordinary escape points.
		if _, isRel := pc.releaseCall(s.Call); isRel && len(s.Call.Args) == 1 {
			if obj := pc.identObj(s.Call.Args[0]); obj != nil {
				if _, tracked := st[obj]; tracked {
					delete(st, obj)
					return st, false
				}
			}
		}
		pc.expr(s.Call, st)
		return st, false
	case *ast.GoStmt:
		pc.expr(s.Call, st)
		return st, false
	case *ast.LabeledStmt:
		return pc.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct; treat the
		// path as terminated (scope-exit leak checks happen at the block
		// that declared the variable).
		if s.Tok == token.FALLTHROUGH {
			return st, false
		}
		return st, true
	case *ast.IncDecStmt:
		pc.expr(s.X, st)
		return st, false
	case *ast.EmptyStmt:
		return st, false
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				pc.expr(e, st)
				return false
			}
			return true
		})
		return st, false
	}
}

// clauses forks st into each case/comm clause and merges the survivors.
// When the construct has no default (exhaustive=false) the fall-past path
// keeps the incoming state.
func (pc *poolChecker) clauses(body *ast.BlockStmt, st poolState, exhaustive bool) (poolState, bool) {
	var merged poolState
	anyOpen := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				pc.expr(e, st)
			}
			stmts = c.Body
		case *ast.CommClause:
			branch := st.clone()
			var term bool
			if c.Comm != nil {
				branch, term = pc.stmt(c.Comm, branch)
			}
			if !term {
				branch, term = pc.block(c.Body, branch)
			}
			if !term {
				if merged == nil {
					merged = branch
				} else {
					merged = merged.merge(branch, pc.vars)
				}
				anyOpen = true
			}
			continue
		}
		branch, term := pc.block(stmts, st.clone())
		if !term {
			if merged == nil {
				merged = branch
			} else {
				merged = merged.merge(branch, pc.vars)
			}
			anyOpen = true
		}
	}
	if !exhaustive {
		if merged == nil {
			merged = st
		} else {
			merged = merged.merge(st, pc.vars)
		}
		anyOpen = true
	}
	if !anyOpen {
		return st, true
	}
	return merged, false
}

// assign handles tracking starts (x := wire.GetBuffer()), overwrites, and
// aliasing escapes.
func (pc *poolChecker) assign(s *ast.AssignStmt, st poolState) poolState {
	// x := wire.Get*() / x = wire.Get*()
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if get, isGet := pc.getCall(call); isGet {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if obj := pc.pass.ObjectOf(id); obj != nil {
						if prev, tracked := st[obj]; tracked && prev.status&poolLive != 0 && !pc.vars[obj].reported {
							pc.vars[obj].reported = true
							pc.pass.Reportf(call.Pos(), "%s is overwritten by wire.%s while the previous pooled value may still be live", obj.Name(), get)
						}
						pc.track(st, id, get, call.Pos(), s.Pos())
						return st
					}
				}
				// Get result assigned to a non-ident (field, index):
				// ownership lives in that location; not tracked.
				pc.expr(s.Lhs[0], st)
				return st
			}
		}
	}
	for _, r := range s.Rhs {
		pc.escapeOrUse(r, st)
	}
	for _, l := range s.Lhs {
		// Overwriting a live tracked variable with something new loses the
		// only reference to the pooled value.
		if obj := pc.identObj(l); obj != nil {
			if v, tracked := st[obj]; tracked {
				if v.status&poolLive != 0 && !rhsMentions(s.Rhs, obj, pc.pass) && !pc.vars[obj].reported {
					pc.vars[obj].reported = true
					pc.pass.Reportf(s.Pos(), "%s is overwritten while the pooled value from wire.%s may still be live", obj.Name(), v.get)
				}
				delete(st, obj)
				// Self-referential reassignment (rs = rs[:0], out = append(out, ...))
				// keeps the same backing value: retain tracking.
				if rhsMentions(s.Rhs, obj, pc.pass) {
					st[obj] = v
				}
			}
			continue
		}
		pc.expr(l, st)
	}
	return st
}

func rhsMentions(rhs []ast.Expr, obj types.Object, pass *Pass) bool {
	for _, r := range rhs {
		found := false
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func (pc *poolChecker) track(st poolState, id *ast.Ident, get string, getPos, declPos token.Pos) {
	obj := pc.pass.ObjectOf(id)
	if obj == nil {
		return
	}
	v := &poolVar{status: poolLive, get: get, getPos: getPos, declPos: declPos}
	st[obj] = v
	pc.vars[obj] = v
}

// identObj unwraps a plain identifier (not a selector or index) to its
// object.
func (pc *poolChecker) identObj(e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return pc.pass.ObjectOf(id)
	}
	return nil
}

// escapeOrUse handles value contexts that transfer ownership when the
// whole tracked value appears (return values, channel sends, RHS of
// assignments to other variables).
func (pc *poolChecker) escapeOrUse(e ast.Expr, st poolState) {
	if obj := pc.identObj(e); obj != nil {
		if v, tracked := st[obj]; tracked {
			pc.useCheck(e.Pos(), obj, v)
			delete(st, obj) // ownership transferred
			return
		}
	}
	pc.expr(e, st)
}

// useCheck flags a use of a possibly-released value.
func (pc *poolChecker) useCheck(pos token.Pos, obj types.Object, v *poolVar) {
	if v.status&poolReleased != 0 {
		pc.pass.Reportf(pos, "%s is used after wire.Release%s returned it to the pool", obj.Name(), releaseSuffix(v.get))
	}
}

func releaseSuffix(get string) string {
	if get == "GetBuffer" {
		return "Buffer"
	}
	return "RecordSlice"
}

// expr walks an expression, recording uses, releases, and escapes of
// tracked variables.
func (pc *poolChecker) expr(e ast.Expr, st poolState) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		if obj := pc.pass.ObjectOf(e); obj != nil {
			if v, tracked := st[obj]; tracked {
				pc.useCheck(e.Pos(), obj, v)
			}
		}
	case *ast.CallExpr:
		pc.call(e, st)
	case *ast.FuncLit:
		// A closure capturing a tracked variable takes over its
		// lifetime: stop tracking everything it references.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pc.pass.ObjectOf(id); obj != nil {
					delete(st, obj)
				}
			}
			return true
		})
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking the address aliases the value: stop tracking.
			if obj := pc.identObj(e.X); obj != nil {
				if v, tracked := st[obj]; tracked {
					pc.useCheck(e.Pos(), obj, v)
					delete(st, obj)
					return
				}
			}
		}
		pc.expr(e.X, st)
	case *ast.CompositeLit:
		// Storing the value in a literal transfers ownership.
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				pc.expr(kv.Key, st)
				pc.escapeOrUse(kv.Value, st)
				continue
			}
			pc.escapeOrUse(el, st)
		}
	case *ast.SelectorExpr:
		pc.expr(e.X, st)
	case *ast.IndexExpr:
		pc.expr(e.X, st)
		pc.expr(e.Index, st)
	case *ast.SliceExpr:
		pc.expr(e.X, st)
		pc.expr(e.Low, st)
		pc.expr(e.High, st)
		pc.expr(e.Max, st)
	case *ast.StarExpr:
		pc.expr(e.X, st)
	case *ast.ParenExpr:
		pc.expr(e.X, st)
	case *ast.BinaryExpr:
		pc.expr(e.X, st)
		pc.expr(e.Y, st)
	case *ast.TypeAssertExpr:
		pc.expr(e.X, st)
	case *ast.KeyValueExpr:
		pc.expr(e.Key, st)
		pc.expr(e.Value, st)
	default:
		// Types, literals: nothing tracked inside.
	}
}

// call handles Release calls, builtins (which never take ownership), and
// ordinary calls (which do).
func (pc *poolChecker) call(call *ast.CallExpr, st poolState) {
	if rel, isRel := pc.releaseCall(call); isRel {
		if len(call.Args) == 1 {
			if obj := pc.identObj(call.Args[0]); obj != nil {
				if v, tracked := st[obj]; tracked {
					if v.status&poolReleased != 0 && !pc.vars[obj].reported {
						pc.vars[obj].reported = true
						pc.pass.Reportf(call.Pos(), "%s may be released more than once (wire.%s already ran on some path)", obj.Name(), rel)
					}
					v.status = poolReleased
					return
				}
			}
		}
		for _, a := range call.Args {
			pc.expr(a, st)
		}
		return
	}
	if get, isGet := pc.getCall(call); isGet {
		// Get in a value context (argument, return, literal): ownership
		// goes wherever the value goes; nothing to track. The discarded
		// case (expression statement) is reported by stmt.
		_ = get
		return
	}
	pc.expr(call.Fun, st)
	builtinOrConv := pc.isBuiltinOrConversion(call)
	for _, a := range call.Args {
		if obj := pc.identObj(a); obj != nil {
			if v, tracked := st[obj]; tracked {
				pc.useCheck(a.Pos(), obj, v)
				if !builtinOrConv {
					delete(st, obj) // ownership handed to the callee
				}
				continue
			}
		}
		pc.expr(a, st)
	}
}

func (pc *poolChecker) isBuiltinOrConversion(call *ast.CallExpr) bool {
	fun := call.Fun
	if p, ok := fun.(*ast.ParenExpr); ok {
		fun = p.X
	}
	if id, ok := fun.(*ast.Ident); ok {
		if obj := pc.pass.ObjectOf(id); obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	if tv, ok := pc.pass.Pkg.Info.Types[fun]; ok && tv.IsType() {
		return true
	}
	return false
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}
