package main

import (
	"go/ast"
	"go/types"
)

// ctxcheck enforces the context-first RPC lifecycle. Every deadline and
// cancellation signal in Rocksteady flows through a context.Context handed
// down from the caller (client → target → source for a migration pull
// chain), so two shapes of code silently break the chain:
//
//   - a function that accepts a ctx anywhere but first, which invites
//     call sites to thread the wrong one (and breaks the uniform
//     "ctx, err := ..." reading order the rest of the tree follows)
//
//   - a context.Background()/context.TODO() conjured mid-stack, which
//     detaches everything below it from the caller's deadline
//
// Fresh roots are legitimate only where a lifetime genuinely starts: a
// main function, a test, or a long-lived server/harness loop that outlives
// any one request. Package main and _test.go files are exempt wholesale
// (the loader never sees test files; mains are skipped here); the server
// roots each carry a //lint:ignore ctxcheck annotation naming why they are
// roots. Detaching from a live ctx inside request-scoped code should use
// context.WithoutCancel, which keeps the trace id and shows intent.
var ctxcheckAnalyzer = &Analyzer{
	Name: "ctxcheck",
	Doc:  "ctx must be the first parameter; no context.Background()/TODO() outside mains, tests, and annotated roots",
	Run:  runCtxcheck,
}

func runCtxcheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		isMain := f.Name.Name == "main"
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxFirst(pass, n.Type)
			case *ast.FuncLit:
				checkCtxFirst(pass, n.Type)
			case *ast.CallExpr:
				if isMain {
					return true
				}
				for _, name := range []string{"Background", "TODO"} {
					if isPkgFunc(pass, n, "context", name) {
						pass.Reportf(n.Pos(), "context.%s detaches from the caller's deadline: thread the incoming ctx (or annotate a deliberate root)", name)
					}
				}
			}
			return true
		})
	}
}

// checkCtxFirst reports any context.Context parameter that is not the
// function's first parameter.
func checkCtxFirst(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1 // unnamed parameter
		}
		if pos > 0 && isContextType(pass, field.Type) {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += width
	}
}

func isContextType(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
