package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// seqcheck enforces the seqlock write protocol of the storage hash table:
// state that lock-free readers load optimistically (declared with a
// //lint:seqguard annotation, e.g. hash-table slots and buckets) may only
// be mutated between beginWrite and endWrite on the owning stripe — the
// odd/even sequence bumps are what tell a racing reader to retry, so a
// single unbracketed store silently corrupts reads without ever failing a
// test.
//
// The analyzer works structurally, so the fixture and the real table are
// checked by the same rules:
//
//   - a "stripe" is any struct with a sync.Mutex/RWMutex and an atomic
//     uint sequence field whose name contains "seq"; its write-section
//     primitives are the methods that lock-then-bump (begin) and
//     bump-then-unlock (end).
//   - the stripe sequence may only be touched by those primitives.
//   - mutations of seqguard-annotated state must sit between a begin and
//     its matching end. Functions that mutate guarded state with no local
//     bracket are legal only if they are helpers the protocol recognizes —
//     methods of the guarded type itself, or functions named *Locked —
//     and the obligation then propagates to their callers through the
//     module-wide fact layer (calling putLocked outside a write section is
//     as wrong as storing a slot directly).
//   - begin/end must pair on every path: no end without begin, no nested
//     begin on the same stripe, no path that returns with the section
//     open (a deferred end keeps it open to function exit, which is fine).
var seqcheckAnalyzer = &Analyzer{
	Name:         "seqcheck",
	Doc:          "seqlock-guarded state mutated only inside begin/endWrite stripe write sections",
	PathPrefixes: []string{seqcheckPathPrefix},
	Collect:      collectSeq,
	Run:          func(pass *Pass) { reportFacts(pass, pass.Facts.SeqFindings) },
}

// seqcheckPathPrefix scopes the analyzer to the storage layer; named
// separately because Collect must apply the same filter without touching
// the analyzer variable (self-reference in the initializer is an
// initialization cycle).
const seqcheckPathPrefix = "rocksteady/internal/storage"

// seqMutatingMethods are the typed-atomic methods that change state;
// Load and friends are what readers do and are always fine.
var seqMutatingMethods = map[string]bool{
	"Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

// seqEvent is one begin/end occurrence inside a function, in source order.
type seqEvent struct {
	pos      token.Pos
	kind     int // 0 begin, 1 end, 2 deferred end
	recvBase types.Object
}

const (
	evBegin = iota
	evEnd
	evDeferEnd
)

// seqInterval is one write-section position range: statements positioned
// inside it run between a begin and its end.
type seqInterval struct{ start, end token.Pos }

// seqFuncInfo is the per-function summary the cross-function pass works on.
type seqFuncInfo struct {
	pkg       *Package
	obj       types.Object
	exempt    bool
	intervals []seqInterval
	// mutations are direct writes to guarded state; calls are invocations
	// of other module functions (resolved to their objects) that may carry
	// a propagated write-section obligation.
	mutations []FactFinding
	calls     []seqCall
}

type seqCall struct {
	pos    token.Pos
	callee types.Object
	name   string
}

func collectSeq(pkgs []*Package, facts *ModuleFacts) {
	var scoped []*Package
	for _, pkg := range pkgs {
		if pkg.Path == seqcheckPathPrefix || strings.HasPrefix(pkg.Path, seqcheckPathPrefix+"/") {
			scoped = append(scoped, pkg)
		}
	}
	if len(scoped) == 0 {
		return
	}

	sc := &seqCollector{
		stripeTypes:   make(map[types.Object]bool),
		seqFields:     make(map[types.Object]bool),
		guardedTypes:  make(map[types.Object]bool),
		guardedFields: make(map[types.Object]string),
		begins:        make(map[types.Object]bool),
		ends:          make(map[types.Object]bool),
	}
	for _, pkg := range scoped {
		sc.discoverTypes(pkg)
	}
	for _, pkg := range scoped {
		sc.discoverPrimitives(pkg)
	}

	report := func(pkg *Package, pos token.Pos, format string, args ...any) {
		facts.SeqFindings[pkg.Path] = append(facts.SeqFindings[pkg.Path],
			FactFinding{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	// Per-function summaries, the seq-field discipline check, and the
	// begin/end pairing walk.
	var infos []*seqFuncInfo
	for _, pkg := range scoped {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				infos = append(infos, sc.summarize(pkg, fd))
				sc.checkSeqDiscipline(pkg, fd, func(pos token.Pos, format string, args ...any) {
					report(pkg, pos, format, args...)
				})
				pw := &seqPairWalker{sc: sc, pkg: pkg, report: func(pos token.Pos, format string, args ...any) {
					report(pkg, pos, format, args...)
				}}
				pw.checkFunc(fd)
			}
		}
	}

	// Fixpoint: an exempt helper that mutates guarded state (or calls a
	// helper that does) outside a local write section carries the
	// obligation outward to its callers.
	required := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if !fi.exempt || fi.obj == nil || required[fi.obj] {
				continue
			}
			needs := false
			for _, m := range fi.mutations {
				if !inSeqInterval(fi.intervals, m.Pos) {
					needs = true
				}
			}
			for _, c := range fi.calls {
				if required[c.callee] && !inSeqInterval(fi.intervals, c.pos) {
					needs = true
				}
			}
			if needs {
				required[fi.obj] = true
				changed = true
			}
		}
	}

	// Violations: in ordinary functions, every unbracketed guarded
	// mutation and every unbracketed call to an obligated helper.
	for _, fi := range infos {
		if fi.exempt {
			continue
		}
		for _, m := range fi.mutations {
			if !inSeqInterval(fi.intervals, m.Pos) {
				report(fi.pkg, m.Pos, "%s", m.Message)
			}
		}
		for _, c := range fi.calls {
			if required[c.callee] && !inSeqInterval(fi.intervals, c.pos) {
				report(fi.pkg, c.pos, "call to %s outside a stripe write section, but it mutates seqlock-guarded state; bracket the call with beginWrite/endWrite", c.name)
			}
		}
	}
}

type seqCollector struct {
	stripeTypes   map[types.Object]bool   // structs with {mutex, atomic seq}
	seqFields     map[types.Object]bool   // the atomic sequence fields
	guardedTypes  map[types.Object]bool   // //lint:seqguard annotated types
	guardedFields map[types.Object]string // field object -> "type.field"
	begins, ends  map[types.Object]bool   // write-section primitive methods
}

// discoverTypes finds stripe-shaped structs and seqguard-annotated types.
func (sc *seqCollector) discoverTypes(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				if hasSeqGuardDirective(gd.Doc) || hasSeqGuardDirective(ts.Doc) {
					sc.guardedTypes[obj] = true
					for i := 0; i < st.NumFields(); i++ {
						fld := st.Field(i)
						sc.guardedFields[fld] = obj.Name() + "." + fld.Name()
					}
				}
				sc.discoverStripe(obj, st)
			}
		}
	}
}

// discoverStripe records obj as a stripe if its struct has a sync mutex
// and an atomic unsigned sequence field.
func (sc *seqCollector) discoverStripe(obj types.Object, st *types.Struct) {
	var hasMu bool
	var seqs []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if isSyncMutex(fld.Type()) {
			hasMu = true
		}
		if name, ok := isAtomicNamed(fld.Type()); ok &&
			(name == "Uint64" || name == "Uint32") &&
			strings.Contains(strings.ToLower(fld.Name()), "seq") {
			seqs = append(seqs, fld)
		}
	}
	if hasMu && len(seqs) > 0 {
		sc.stripeTypes[obj] = true
		for _, s := range seqs {
			sc.seqFields[s] = true
		}
	}
}

func hasSeqGuardDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//lint:seqguard") {
			return true
		}
	}
	return false
}

// recvTypeObj resolves a method's receiver base type object, or nil.
func recvTypeObj(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return pkg.ObjectOf(x)
		case *ast.IndexExpr: // generic receiver, not used here
			t = x.X
		default:
			return nil
		}
	}
}

// finalSelObj resolves the last named component of a receiver path
// (x.f -> f, x.f[i] -> f, ident -> ident's object).
func finalSelObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return pkg.ObjectOf(x.Sel)
		case *ast.Ident:
			return pkg.ObjectOf(x)
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// discoverPrimitives classifies stripe methods: lock-then-bump is a begin,
// bump-then-unlock is an end.
func (sc *seqCollector) discoverPrimitives(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !sc.stripeTypes[recvTypeObj(pkg, fd)] {
				continue
			}
			var lockPos, unlockPos, addPos token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Lock":
						if t := pkg.TypeOf(sel.X); t != nil && isSyncMutex(t) {
							lockPos = call.Pos()
						}
					case "Unlock":
						if t := pkg.TypeOf(sel.X); t != nil && isSyncMutex(t) {
							unlockPos = call.Pos()
						}
					}
				}
				if recv, method, ok := atomicMethodOn(pkg, call); ok && seqMutatingMethods[method] {
					if sc.seqFields[finalSelObj(pkg, recv)] {
						addPos = call.Pos()
					}
				}
				return true
			})
			fnObj := pkg.Info.Defs[fd.Name]
			if lockPos.IsValid() && addPos.IsValid() && lockPos < addPos {
				sc.begins[fnObj] = true
			}
			if addPos.IsValid() && unlockPos.IsValid() && addPos < unlockPos {
				sc.ends[fnObj] = true
			}
		}
	}
}

// checkSeqDiscipline flags direct bumps of a stripe sequence anywhere but
// the stripe's own methods.
func (sc *seqCollector) checkSeqDiscipline(pkg *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	if sc.stripeTypes[recvTypeObj(pkg, fd)] {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := atomicMethodOn(pkg, call)
		if !ok || !seqMutatingMethods[method] {
			return true
		}
		if obj := finalSelObj(pkg, recv); obj != nil && sc.seqFields[obj] {
			report(call.Pos(), "stripe sequence %s bumped directly; only the stripe's write-section primitives may touch it", obj.Name())
		}
		return true
	})
}

// summarize builds the per-function write-section intervals and the list
// of guarded mutations and propagating calls.
func (sc *seqCollector) summarize(pkg *Package, fd *ast.FuncDecl) *seqFuncInfo {
	fnObj := pkg.Info.Defs[fd.Name]
	recvObj := recvTypeObj(pkg, fd)
	fi := &seqFuncInfo{
		pkg: pkg,
		obj: fnObj,
		exempt: strings.HasSuffix(fd.Name.Name, "Locked") ||
			sc.guardedTypes[recvObj] || sc.stripeTypes[recvObj] ||
			sc.begins[fnObj] || sc.ends[fnObj],
	}

	// Write-section intervals: pair each begin with the next end after it;
	// a deferred end (or a dangling begin — the pairing walker reports
	// that separately) keeps the section open to the end of the function.
	var events []seqEvent
	deferCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if obj := calleeObj(pkg, n.Call); obj != nil && sc.ends[obj] {
				deferCalls[n.Call] = true
				events = append(events, seqEvent{pos: n.Call.Pos(), kind: evDeferEnd})
			}
		case *ast.CallExpr:
			if deferCalls[n] {
				return true
			}
			switch obj := calleeObj(pkg, n); {
			case obj != nil && sc.begins[obj]:
				events = append(events, seqEvent{pos: n.Pos(), kind: evBegin})
			case obj != nil && sc.ends[obj]:
				events = append(events, seqEvent{pos: n.Pos(), kind: evEnd})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	var open []token.Pos
	for _, ev := range events {
		switch ev.kind {
		case evBegin:
			open = append(open, ev.pos)
		case evEnd:
			if n := len(open); n > 0 {
				fi.intervals = append(fi.intervals, seqInterval{start: open[n-1], end: ev.pos})
				open = open[:n-1]
			}
		case evDeferEnd:
			if n := len(open); n > 0 {
				fi.intervals = append(fi.intervals, seqInterval{start: open[n-1], end: fd.Body.End()})
				open = open[:n-1]
			}
		}
	}
	for _, p := range open {
		fi.intervals = append(fi.intervals, seqInterval{start: p, end: fd.Body.End()})
	}

	// Guarded mutations: atomic mutating methods on guarded fields, plain
	// assignments and inc/dec of guarded fields; plus calls to any module
	// function (the fixpoint decides which callees matter).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, method, ok := atomicMethodOn(pkg, n); ok && seqMutatingMethods[method] {
				if obj := finalSelObj(pkg, recv); obj != nil {
					if label, guarded := sc.guardedFields[obj]; guarded {
						fi.mutations = append(fi.mutations, FactFinding{
							Pos:     n.Pos(),
							Message: fmt.Sprintf("mutation of seqlock-guarded %s outside a stripe write section; bracket it with beginWrite/endWrite", label),
						})
					}
				}
				return true
			}
			if obj := calleeObj(pkg, n); obj != nil {
				fi.calls = append(fi.calls, seqCall{pos: n.Pos(), callee: obj, name: obj.Name()})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if label, guarded := sc.guardedFields[pkg.ObjectOf(sel.Sel)]; guarded {
					fi.mutations = append(fi.mutations, FactFinding{
						Pos:     lhs.Pos(),
						Message: fmt.Sprintf("plain write to seqlock-guarded %s outside a stripe write section; bracket it with beginWrite/endWrite", label),
					})
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok {
				if label, guarded := sc.guardedFields[pkg.ObjectOf(sel.Sel)]; guarded {
					fi.mutations = append(fi.mutations, FactFinding{
						Pos:     n.Pos(),
						Message: fmt.Sprintf("plain write to seqlock-guarded %s outside a stripe write section; bracket it with beginWrite/endWrite", label),
					})
				}
			}
		}
		return true
	})
	return fi
}

// calleeObj resolves a call's target function object (methods and
// package functions), or nil for builtins and indirect calls.
func calleeObj(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.ObjectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.ObjectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func inSeqInterval(intervals []seqInterval, pos token.Pos) bool {
	for _, iv := range intervals {
		if iv.start <= pos && pos <= iv.end {
			return true
		}
	}
	return false
}

// seqPairWalker is the path-sensitive begin/end pairing check, modeled on
// lockhold's lock tracking: per path it knows, for each stripe variable,
// whether its write section is open and whether a deferred end covers
// function exit.
type seqPairWalker struct {
	sc     *seqCollector
	pkg    *Package
	report func(token.Pos, string, ...any)
}

type secInfo struct{ open, deferred bool }

type secSet map[types.Object]secInfo

func (s secSet) clone() secSet {
	out := make(secSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge unions two path states; open anywhere is open, and a deferred end
// only counts if both paths registered it.
func (s secSet) merge(other secSet) secSet {
	out := make(secSet, len(s)+len(other))
	for k, a := range s {
		b := other[k]
		out[k] = mergeSec(a, b)
	}
	for k, b := range other {
		if _, seen := s[k]; !seen {
			out[k] = mergeSec(secInfo{}, b)
		}
	}
	return out
}

func mergeSec(a, b secInfo) secInfo {
	switch {
	case a.open && b.open:
		return secInfo{open: true, deferred: a.deferred && b.deferred}
	case a.open:
		return a
	case b.open:
		return b
	default:
		return secInfo{}
	}
}

func (w *seqPairWalker) checkFunc(fd *ast.FuncDecl) {
	state, terminated := w.block(fd.Body.List, make(secSet))
	if !terminated {
		w.checkExit(fd.Body.End(), state)
	}
	// Function literals run on their own frames with no section open.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			litState, litTerm := w.block(lit.Body.List, make(secSet))
			if !litTerm {
				w.checkExit(lit.Body.End(), litState)
			}
			return false
		}
		return true
	})
}

func (w *seqPairWalker) checkExit(pos token.Pos, state secSet) {
	for obj, info := range state {
		if info.open && !info.deferred {
			w.report(pos, "stripe write section on %s still open at function exit; endWrite missing on this path", obj.Name())
		}
	}
}

func (w *seqPairWalker) block(stmts []ast.Stmt, state secSet) (secSet, bool) {
	for _, s := range stmts {
		var terminated bool
		state, terminated = w.stmt(s, state)
		if terminated {
			return state, true
		}
	}
	return state, false
}

func (w *seqPairWalker) stmt(s ast.Stmt, state secSet) (secSet, bool) {
	switch s := s.(type) {
	case nil:
		return state, false
	case *ast.ExprStmt:
		w.expr(s.X, state)
		return state, false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, state)
		}
		return state, false
	case *ast.IfStmt:
		state, _ = w.stmt(s.Init, state)
		w.expr(s.Cond, state)
		thenState, thenTerm := w.block(s.Body.List, state.clone())
		elseState, elseTerm := state, false
		if s.Else != nil {
			elseState, elseTerm = w.stmt(s.Else, state.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return state, true
		case thenTerm:
			return elseState, false
		case elseTerm:
			return thenState, false
		default:
			return thenState.merge(elseState), false
		}
	case *ast.BlockStmt:
		return w.block(s.List, state)
	case *ast.ForStmt:
		state, _ = w.stmt(s.Init, state)
		w.expr(s.Cond, state)
		bodyState, bodyTerm := w.block(s.Body.List, state.clone())
		if !bodyTerm {
			bodyState, _ = w.stmt(s.Post, bodyState)
			state = state.merge(bodyState)
		}
		return state, false
	case *ast.RangeStmt:
		w.expr(s.X, state)
		bodyState, bodyTerm := w.block(s.Body.List, state.clone())
		if !bodyTerm {
			state = state.merge(bodyState)
		}
		return state, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			state, _ = w.stmt(sw.Init, state)
			w.expr(sw.Tag, state)
			body = sw.Body
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			state, _ = w.stmt(ts.Init, state)
			body = ts.Body
		}
		merged := state
		for _, clause := range body.List {
			if c, ok := clause.(*ast.CaseClause); ok {
				branch, term := w.block(c.Body, state.clone())
				if !term {
					merged = merged.merge(branch)
				}
			}
		}
		return merged, false
	case *ast.SelectStmt:
		merged := state
		for _, clause := range s.Body.List {
			if c, ok := clause.(*ast.CommClause); ok {
				branch, term := w.block(c.Body, state.clone())
				if !term {
					merged = merged.merge(branch)
				}
			}
		}
		return merged, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, state)
		}
		w.checkExit(s.Pos(), state)
		return state, true
	case *ast.BranchStmt:
		return state, true
	case *ast.DeferStmt:
		if obj := calleeObj(w.pkg, s.Call); obj != nil && w.sc.ends[obj] {
			if key := w.stripeKey(s.Call); key != nil {
				info := state[key]
				info.deferred = true
				state[key] = info
			}
			return state, false
		}
		w.expr(s.Call, state)
		return state, false
	case *ast.GoStmt:
		return state, false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, state)
	default:
		return state, false
	}
}

// expr scans an expression for begin/end transitions, in source order.
func (w *seqPairWalker) expr(e ast.Expr, state secSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // analyzed separately with a fresh state
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(w.pkg, call)
		if obj == nil {
			return true
		}
		key := w.stripeKey(call)
		if key == nil {
			return true
		}
		switch {
		case w.sc.begins[obj]:
			if state[key].open {
				w.report(call.Pos(), "write section on %s opened while already open; nested beginWrite deadlocks on the stripe mutex", key.Name())
			}
			state[key] = secInfo{open: true}
		case w.sc.ends[obj]:
			if !state[key].open {
				w.report(call.Pos(), "endWrite on %s without a matching beginWrite; the stripe sequence goes odd and readers spin", key.Name())
			}
			state[key] = secInfo{}
		}
		return true
	})
}

// stripeKey identifies the stripe a begin/end call operates on by the base
// variable of its receiver, or nil when the receiver is not a trackable
// path (e.g. a chained call).
func (w *seqPairWalker) stripeKey(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	base := baseIdentOf(sel.X)
	if base == nil {
		return nil
	}
	return w.pkg.ObjectOf(base)
}
