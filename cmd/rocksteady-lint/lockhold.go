package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockhold guards against the dispatch/TCP coalescing deadlock class: a
// goroutine that blocks on a transport Send or an unbuffered/full channel
// while holding a sync.Mutex or sync.RWMutex can deadlock the whole
// dispatch loop (the peer needs the same lock to drain the queue that
// would unblock the send). The TCP write path is explicitly structured to
// drop the peer lock before writev for exactly this reason.
//
// The analysis tracks, per function and path, the set of mutexes held
// (x.Lock()/x.RLock() ... x.Unlock()/x.RUnlock(); defer x.Unlock() holds
// to the end) and flags while any are held:
//
//   - channel send statements (ch <- v) outside a select with a default
//   - select statements containing a send with no default case
//   - calls to a Send method on a transport endpoint (anything whose Send
//     has the func(*wire.Message) error signature)
//
// sync.Cond operations are exempt: Wait atomically releases the mutex.
var lockholdAnalyzer = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking transport Send or channel send while a sync mutex is held",
	Run:  runLockhold,
}

func runLockhold(pass *Pass) {
	lc := &lockChecker{pass: pass}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lc.block(n.Body.List, make(lockSet))
				}
			case *ast.FuncLit:
				// A literal runs on its own goroutine or call frame: it
				// holds no locks on entry.
				lc.block(n.Body.List, make(lockSet))
			}
			return true
		})
	}
}

// lockSet maps the object of a mutex-typed variable or field to "held on
// some path reaching here".
type lockSet map[types.Object]bool

func (ls lockSet) clone() lockSet {
	out := make(lockSet, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

// merge unions two path states: held anywhere is held (conservative).
func (ls lockSet) merge(other lockSet) lockSet {
	out := ls.clone()
	for k, v := range other {
		if v {
			out[k] = true
		}
	}
	return out
}

func (ls lockSet) anyHeld() (types.Object, bool) {
	for k, v := range ls {
		if v {
			return k, true
		}
	}
	return nil, false
}

type lockChecker struct {
	pass *Pass
}

func (lc *lockChecker) block(stmts []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, s := range stmts {
		var terminated bool
		held, terminated = lc.stmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (lc *lockChecker) stmt(s ast.Stmt, held lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case nil:
		return held, false
	case *ast.ExprStmt:
		lc.expr(s.X, held)
		return held, false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			lc.expr(r, held)
		}
		return held, false
	case *ast.SendStmt:
		lc.flagSend(s.Pos(), held, "channel send")
		return held, false
	case *ast.IfStmt:
		held, _ = lc.stmt(s.Init, held)
		lc.expr(s.Cond, held)
		thenHeld, thenTerm := lc.block(s.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = lc.stmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return thenHeld.merge(elseHeld), false
		}
	case *ast.BlockStmt:
		return lc.block(s.List, held)
	case *ast.ForStmt:
		held, _ = lc.stmt(s.Init, held)
		lc.expr(s.Cond, held)
		bodyHeld, bodyTerm := lc.block(s.Body.List, held.clone())
		if !bodyTerm {
			bodyHeld, _ = lc.stmt(s.Post, bodyHeld)
			held = held.merge(bodyHeld)
		}
		return held, false
	case *ast.RangeStmt:
		lc.expr(s.X, held)
		bodyHeld, bodyTerm := lc.block(s.Body.List, held.clone())
		if !bodyTerm {
			held = held.merge(bodyHeld)
		}
		return held, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			held, _ = lc.stmt(sw.Init, held)
			lc.expr(sw.Tag, held)
			body = sw.Body
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			held, _ = lc.stmt(ts.Init, held)
			body = ts.Body
		}
		merged := held
		for _, clause := range body.List {
			if c, ok := clause.(*ast.CaseClause); ok {
				branch, term := lc.block(c.Body, held.clone())
				if !term {
					merged = merged.merge(branch)
				}
			}
		}
		return merged, false
	case *ast.SelectStmt:
		// A select with a default case never blocks; without one, a send
		// clause is a blocking send.
		hasDefault := hasDefaultCommClause(s.Body)
		merged := held
		for _, clause := range s.Body.List {
			c, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, isSend := c.Comm.(*ast.SendStmt); isSend && !hasDefault {
				lc.flagSend(send.Pos(), held, "blocking select send")
			}
			branch, term := lc.block(c.Body, held.clone())
			if !term {
				merged = merged.merge(branch)
			}
		}
		return merged, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lc.expr(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.DeferStmt:
		// defer mu.Unlock() means the lock is held for the rest of the
		// function: deliberately do NOT clear it. Everything else inside
		// a defer runs at exit; scan it with the current held set.
		if obj, op := lc.mutexOp(s.Call); obj != nil && (op == "Unlock" || op == "RUnlock") {
			return held, false
		}
		lc.expr(s.Call, held)
		return held, false
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the holder's locks.
		lc.exprInner(s.Call, make(lockSet))
		return held, false
	case *ast.LabeledStmt:
		return lc.stmt(s.Stmt, held)
	case *ast.DeclStmt, *ast.EmptyStmt, *ast.IncDecStmt:
		return held, false
	default:
		return held, false
	}
}

// expr scans an expression for lock transitions and blocking calls.
func (lc *lockChecker) expr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			// Literal bodies are analyzed separately with an empty lock
			// set; they do not run under the creator's locks.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, op := lc.mutexOp(call); obj != nil {
			switch op {
			case "Lock", "RLock":
				held[obj] = true
			case "Unlock", "RUnlock":
				held[obj] = false
			}
			return false
		}
		if lc.isTransportSend(call) {
			if obj, any := held.anyHeld(); any {
				lc.pass.Reportf(call.Pos(), "transport Send while %s is held: a blocked write deadlocks everyone needing the lock; release it first", obj.Name())
			}
		}
		return true
	})
}

// exprInner is expr with a fresh lock set (used for goroutine bodies).
func (lc *lockChecker) exprInner(e ast.Expr, held lockSet) { lc.expr(e, held) }

func (lc *lockChecker) flagSend(pos token.Pos, held lockSet, what string) {
	if obj, any := held.anyHeld(); any {
		lc.pass.Reportf(pos, "%s while %s is held: if the channel is full this blocks with the lock taken; release it first", what, obj.Name())
	}
}

// hasDefaultCommClause reports whether a select body has a default case
// (select clauses are CommClauses, unlike switch's CaseClauses).
func hasDefaultCommClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// mutexOp recognizes x.Lock()/x.Unlock()/x.RLock()/x.RUnlock() where x is
// a sync.Mutex or sync.RWMutex (possibly behind a pointer) and returns the
// object identifying x plus the operation name.
func (lc *lockChecker) mutexOp(call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	t := lc.pass.TypeOf(sel.X)
	if t == nil || !isSyncMutex(t) {
		return nil, ""
	}
	// Identify the mutex by the last selector component (field or var).
	switch x := sel.X.(type) {
	case *ast.Ident:
		return lc.pass.ObjectOf(x), op
	case *ast.SelectorExpr:
		return lc.pass.ObjectOf(x.Sel), op
	default:
		return nil, ""
	}
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isTransportSend recognizes calls to a Send method with the transport
// Endpoint signature func(*wire.Message) error, on either the interface or
// a concrete endpoint.
func (lc *lockChecker) isTransportSend(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Send" {
		return false
	}
	obj := lc.pass.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	param, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := param.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Message" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != wirePkgPath {
		return false
	}
	return types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}
