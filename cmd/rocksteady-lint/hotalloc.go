package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotalloc is the static complement to alloc_budget_test.go: functions
// annotated //lint:hotpath (the Get/decode/enqueue-pickup paths whose
// allocs/op the runtime budgets pin) are scanned for constructs that
// obviously allocate, so a regression is caught at lint time with a line
// number instead of at test time with a count.
//
// Flagged inside a hotpath function:
//
//   - make and new
//   - slice and map composite literals, and &T{...} (escaping); plain
//     value literals like Ref{...} are stack-friendly and allowed
//   - append into anything other than the slice itself (x = append(x, ...)
//     amortizes against caller-owned capacity and is allowed)
//   - function literals (a closure capturing variables allocates)
//   - string <-> []byte conversions
//   - interface boxing at call sites: a concrete non-pointer value passed
//     to an interface parameter escapes to the heap
//
// The annotation is deliberately per-function and the analysis local:
// what a callee allocates is the callee's business to annotate.
var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "no obvious allocation constructs in //lint:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathDirective(fd.Doc) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//lint:hotpath") {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg

	// Self-appends (x = append(x, ...)) and address-taken composite
	// literals are recognized at their parent node, one pre-pass so the
	// main walk can consult them.
	allowedAppend := make(map[*ast.CallExpr]bool)
	escapingLit := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinCall(pkg, call, "append") || len(call.Args) == 0 {
					continue
				}
				lhsObj := finalSelObj(pkg, n.Lhs[i])
				argObj := finalSelObj(pkg, call.Args[0])
				if lhsObj != nil && lhsObj == argObj {
					allowedAppend[call] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					escapingLit[lit] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hotpath function %s allocates; hoist it or pass state explicitly", fd.Name.Name)
			return false
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hotpath function %s", fd.Name.Name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hotpath function %s", fd.Name.Name)
			default:
				if escapingLit[n] {
					pass.Reportf(n.Pos(), "&composite literal escapes to the heap in hotpath function %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, allowedAppend)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, allowedAppend map[*ast.CallExpr]bool) {
	pkg := pass.Pkg

	switch {
	case isBuiltinCall(pkg, call, "make"):
		pass.Reportf(call.Pos(), "make allocates in hotpath function %s; preallocate or pool the buffer", fd.Name.Name)
		return
	case isBuiltinCall(pkg, call, "new"):
		pass.Reportf(call.Pos(), "new allocates in hotpath function %s", fd.Name.Name)
		return
	case isBuiltinCall(pkg, call, "append"):
		if !allowedAppend[call] {
			pass.Reportf(call.Pos(), "append result does not feed back into its argument in hotpath function %s; growth escapes the caller's buffer", fd.Name.Name)
		}
		return
	}

	// Conversions: string([]byte) and []byte(string) copy.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pass.TypeOf(call.Args[0])
		if src != nil && isStringBytesPair(dst, src) {
			pass.Reportf(call.Pos(), "string/[]byte conversion copies in hotpath function %s", fd.Name.Name)
		}
		return
	}

	// Interface boxing: concrete non-pointer argument to an interface
	// parameter escapes.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // passing an existing ...slice boxes nothing new
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) || boxesForFree(at) {
			continue
		}
		if tv, ok := pkg.Info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "interface boxing: %s passed to interface parameter allocates in hotpath function %s", at.String(), fd.Name.Name)
	}
}

// boxesForFree reports whether storing a value of type t in an interface
// needs no heap copy: pointer-shaped values go straight in the data word.
func boxesForFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// isStringBytesPair reports whether (dst, src) is a string<->[]byte pair
// in either direction.
func isStringBytesPair(dst, src types.Type) bool {
	return (isStringType(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isBuiltinCall reports whether call invokes the named builtin (shadowed
// identifiers — e.g. a parameter named new — resolve to variables and do
// not match).
func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pkg.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}
