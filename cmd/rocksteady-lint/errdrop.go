package main

import (
	"go/ast"
	"go/types"
)

// errdrop forbids silently dropped errors in the hot-path packages. A bare
// call statement (or go statement) whose callee returns an error — alone
// or as the last of several results — discards it invisibly; on the
// server/transport path that usually means a dead connection or failed
// replication is never noticed. Explicitly assigning to the blank
// identifier (`_ = conn.Close()`) is allowed: it states the intent.
// Deferred calls are exempt (the idiomatic `defer f.Close()`).
var errdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "no silently discarded error returns in the server/transport hot path",
	PathPrefixes: []string{
		"rocksteady/internal/core",
		"rocksteady/internal/dispatch",
		"rocksteady/internal/transport",
		"rocksteady/internal/server",
	},
	Run: runErrdrop,
}

func runErrdrop(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	returnsError := func(call *ast.CallExpr) bool {
		t := pass.TypeOf(call)
		if t == nil {
			return false
		}
		switch t := t.(type) {
		case *types.Tuple:
			return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType)
		default:
			return types.Identical(t, errType)
		}
	}
	check := func(call *ast.CallExpr, how string) {
		if returnsError(call) {
			pass.Reportf(call.Pos(), "%s discards the error returned by %s; handle it or assign it to _", how, callName(call))
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// Idiomatic defer f.Close(): exempt, but a deferred
				// function literal's body is still checked.
				if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(fl.Body, func(m ast.Node) bool {
						if es, ok := m.(*ast.ExprStmt); ok {
							if call, ok := es.X.(*ast.CallExpr); ok {
								check(call, "call statement")
							}
						}
						return true
					})
				}
				return false
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, "call statement")
				}
			case *ast.GoStmt:
				if _, isLit := n.Call.Fun.(*ast.FuncLit); !isLit {
					check(n.Call, "go statement")
				}
			}
			return true
		})
	}
}

// callName renders the callee for diagnostics (fmt.Fprintf, conn.Close).
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return "(...)." + f.Sel.Name
	default:
		return "function call"
	}
}
