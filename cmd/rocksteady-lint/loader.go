package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers run on.
type Package struct {
	Path  string // import path ("rocksteady/internal/wire")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages from source. It is
// deliberately stdlib-only: module packages resolve against the module root
// (read from go.mod), everything else falls back to the compiler's
// source importer, so the tool builds and runs offline with no
// golang.org/x/tools dependency.
type Loader struct {
	ModulePath string // module path from go.mod
	ModuleRoot string // directory containing go.mod

	fset     *token.FileSet
	fallback types.Importer
	loaded   map[string]*Package
	checking map[string]bool // import-cycle guard
}

// NewLoader locates the enclosing module starting at dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModulePath: modPath,
		ModuleRoot: root,
		fset:       fset,
		loaded:     make(map[string]*Package),
		checking:   make(map[string]bool),
	}
	l.fallback = newStdImporter(root, fset)
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Fset returns the shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Expand resolves package patterns ("./...", "./internal/wire", an import
// path) into the import paths of matching module packages, in stable order.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.moduleDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(l.dirImportPath(d))
			}
		case strings.HasPrefix(pat, "./"):
			d := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			if strings.HasSuffix(pat, "/...") {
				d = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/...")))
				sub, err := packageDirsUnder(d)
				if err != nil {
					return nil, err
				}
				for _, s := range sub {
					add(l.dirImportPath(s))
				}
				continue
			}
			add(l.dirImportPath(d))
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// moduleDirs lists every directory under the module root that holds
// non-test Go files, skipping testdata, hidden dirs, and vendored trees.
func (l *Loader) moduleDirs() ([]string, error) {
	return packageDirsUnder(l.ModuleRoot)
}

func packageDirsUnder(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := nonTestGoFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func nonTestGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

func (l *Loader) dirImportPath(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// Load type-checks the package with the given import path (module packages
// only; stdlib resolves through the fallback importer during checking).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	if !l.isModulePackage(path) {
		return nil, fmt.Errorf("not a module package: %s", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	files, err := nonTestGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return l.LoadFiles(path, dir, files)
}

// LoadFiles type-checks an explicit file list as one package. The analyzer
// tests use this to load fixture files from testdata (which the go tool,
// and moduleDirs above, deliberately skip).
func (l *Loader) LoadFiles(path, dir string, files []string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) {}, // collect only the first hard error below
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: asts, Types: tpkg, Info: info}
	l.loaded[path] = p
	return p, nil
}

func (l *Loader) isModulePackage(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// Import implements types.Importer: module packages load from source here,
// everything else (stdlib) goes to the compiler's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.isModulePackage(path) {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.fallback.Import(path)
}
