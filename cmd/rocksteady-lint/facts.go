package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ModuleFacts is the cross-function fact layer. Analyzers that need
// module-wide knowledge (a field accessed atomically in one package and
// plainly in another, a publisher function defined far from its callers)
// deposit summaries here during the sequential Collect phase; the parallel
// per-package Run phase then consumes them read-only.
//
// Facts are keyed by types.Object. The loader typechecks the whole module
// through one shared cache, so the *types.Var for, say,
// server.Server.tablets is the same object no matter which package's AST
// mentions it — that identity is what makes cross-package summaries sound.
type ModuleFacts struct {
	// AtomicFindings holds atomiccheck's diagnostics, computed module-wide
	// during Collect (mixed atomic/plain access can span packages), keyed
	// by the import path of the package that reports them.
	AtomicFindings map[string][]FactFinding

	// SeqFindings holds seqcheck's cross-function diagnostics (guarded
	// mutations reached outside any write section, through the call
	// graph), keyed by import path.
	SeqFindings map[string][]FactFinding

	// RCUSources marks functions whose result is a pointer loaded from an
	// atomic.Pointer (directly, or by returning another source's result):
	// their callers receive published memory that must not be mutated.
	RCUSources map[types.Object]bool
}

// FactFinding is a diagnostic computed during the Collect phase and
// replayed by the owning package's Run, so it flows through the normal
// //lint:ignore suppression and position sorting.
type FactFinding struct {
	Pos     token.Pos
	Message string
}

func newModuleFacts() *ModuleFacts {
	return &ModuleFacts{
		AtomicFindings: make(map[string][]FactFinding),
		SeqFindings:    make(map[string][]FactFinding),
		RCUSources:     make(map[types.Object]bool),
	}
}

// reportFacts replays the pass's precomputed findings from the given
// per-package table.
func reportFacts(pass *Pass, table map[string][]FactFinding) {
	for _, f := range table[pass.Pkg.Path] {
		pass.Reportf(f.Pos, "%s", f.Message)
	}
}

// isAtomicNamed reports whether t (possibly behind a pointer) is one of
// sync/atomic's typed-atomic named types (atomic.Int64, atomic.Pointer[T],
// ...), returning its name.
func isAtomicNamed(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return obj.Name(), true
}

// atomicMethodOn resolves a call of the form x.M(...) where M is a method
// of a sync/atomic typed value, returning the receiver expression and the
// method name.
func atomicMethodOn(p *Package, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := p.ObjectOf(sel.Sel).(*types.Func)
	if !isFn {
		return nil, "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", false
	}
	if _, atomicRecv := isAtomicNamed(sig.Recv().Type()); !atomicRecv {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// baseIdentOf peels selectors, index expressions, stars, and parens off e
// and returns the root identifier, or nil (e.g. when the root is a call).
func baseIdentOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
