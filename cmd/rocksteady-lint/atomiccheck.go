package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// atomiccheck enforces the first rule of the lock-free read path: a word
// that is ever accessed through sync/atomic is accessed through sync/atomic
// everywhere. One plain load racing an atomic store is enough to lose the
// data-race guarantee the seqlock and RCU protocols rest on, and the mixed
// pair can live in different packages where no local review sees both.
//
// Two kinds of violation are reported, using the module-wide fact layer:
//
//   - a struct field passed to a sync/atomic function (&x.f style) in one
//     place and read or written plainly in another; the diagnostic names
//     both locations.
//   - a typed atomic (atomic.Int64, atomic.Pointer[T], ...) used as a
//     plain value — copied, passed, or returned by value — rather than
//     addressed. Copying an atomic silently forks its state.
//
// Method calls on typed atomics, taking a field's address, and the
// declarations themselves are all fine; everything is resolved through the
// type checker, so aliasing and embedding do not hide accesses.
var atomiccheckAnalyzer = &Analyzer{
	Name:    "atomiccheck",
	Doc:     "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Collect: collectAtomic,
	Run:     func(pass *Pass) { reportFacts(pass, pass.Facts.AtomicFindings) },
}

// atomicSite is the first observed sync/atomic access of a field.
type atomicSite struct {
	pos  token.Pos
	fset *token.FileSet
}

func collectAtomic(pkgs []*Package, facts *ModuleFacts) {
	// Per-package expression claims. atomicUse marks expressions consumed
	// by sync/atomic itself (old-style &f arguments, typed-atomic method
	// receivers); addrTaken marks operands of unary & (taking an atomic's
	// address is how it is legitimately shared).
	type claims struct {
		atomicUse map[ast.Expr]bool
		addrTaken map[ast.Expr]bool
	}
	claimed := make(map[*Package]*claims, len(pkgs))

	// Phase 1: record every atomic access module-wide. sites maps a struct
	// field object to its first old-style sync/atomic access.
	sites := make(map[types.Object]atomicSite)
	for _, pkg := range pkgs {
		c := &claims{atomicUse: make(map[ast.Expr]bool), addrTaken: make(map[ast.Expr]bool)}
		claimed[pkg] = c
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					// x.Load, x.Store, ... on a typed atomic: the receiver
					// expression is an atomic use whether or not the method
					// value is immediately called.
					if fn, ok := pkg.ObjectOf(n.Sel).(*types.Func); ok {
						if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
							if _, isAtomic := isAtomicNamed(sig.Recv().Type()); isAtomic {
								c.atomicUse[n.X] = true
							}
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						c.addrTaken[n.X] = true
					}
				case *ast.CallExpr:
					if !isSyncAtomicPkgFunc(pkg, n) || len(n.Args) == 0 {
						return true
					}
					un, ok := n.Args[0].(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						return true
					}
					c.atomicUse[un.X] = true
					if obj := fieldObjOf(pkg, un.X); obj != nil {
						if _, seen := sites[obj]; !seen {
							sites[obj] = atomicSite{pos: un.X.Pos(), fset: pkg.Fset}
						}
					}
				}
				return true
			})
		}
	}

	// Phase 2: with the module-wide atomic-access summary complete, flag
	// plain uses. Sel identifiers of selector expressions are handled at
	// the selector, so they are skipped as bare idents.
	for _, pkg := range pkgs {
		c := claimed[pkg]
		report := func(pos token.Pos, msg string) {
			facts.AtomicFindings[pkg.Path] = append(facts.AtomicFindings[pkg.Path], FactFinding{Pos: pos, Message: msg})
		}
		flagMixed := func(e ast.Expr, obj types.Object) {
			site, ok := sites[obj]
			if !ok || c.atomicUse[e] {
				return
			}
			report(e.Pos(), fmt.Sprintf("plain access of field %s, which is accessed via sync/atomic at %s; use sync/atomic for every access",
				obj.Name(), site.fset.Position(site.pos)))
		}
		flagTypedPlain := func(e ast.Expr) {
			tv, ok := pkg.Info.Types[e]
			if !ok || !tv.IsValue() {
				return
			}
			name, ok := directAtomicNamed(tv.Type)
			if !ok || c.atomicUse[e] || c.addrTaken[e] {
				return
			}
			report(e.Pos(), fmt.Sprintf("atomic.%s used as a plain value (copied, passed, or returned by value); address it instead — a copy forks the atomic's state", name))
		}
		for _, f := range pkg.Files {
			skipIdents := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					skipIdents[n.Sel] = true
					if obj := pkg.ObjectOf(n.Sel); obj != nil {
						flagMixed(n, obj)
					}
					flagTypedPlain(n)
				case *ast.Ident:
					if skipIdents[n] {
						return true
					}
					if obj := pkg.Info.Uses[n]; obj != nil {
						flagMixed(n, obj)
					}
					flagTypedPlain(n)
				case *ast.IndexExpr, *ast.StarExpr, *ast.CallExpr:
					flagTypedPlain(n.(ast.Expr))
				}
				return true
			})
		}
	}
}

// directAtomicNamed is isAtomicNamed without pointer unwrapping: a
// *atomic.Int64 value is the normal way to share an atomic and is fine;
// only a value of the atomic type itself indicates a copy.
func directAtomicNamed(t types.Type) (string, bool) {
	if _, isPtr := t.(*types.Pointer); isPtr {
		return "", false
	}
	return isAtomicNamed(t)
}

// isSyncAtomicPkgFunc reports whether call invokes a package-level function
// of sync/atomic (the old-style atomic.LoadUint64(&x) API).
func isSyncAtomicPkgFunc(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldObjOf resolves e to a struct-field object, or nil. Only fields are
// summarized module-wide: they are the shared state the protocol guards.
func fieldObjOf(pkg *Package, e ast.Expr) types.Object {
	var obj types.Object
	switch x := e.(type) {
	case *ast.SelectorExpr:
		obj = pkg.ObjectOf(x.Sel)
	case *ast.Ident:
		obj = pkg.ObjectOf(x)
	default:
		return nil
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}
