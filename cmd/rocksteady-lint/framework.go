package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one invariant checker. Most analyzers are purely
// intra-procedural and run independently per package; analyzers that need
// module-wide knowledge (atomiccheck's per-field access summaries,
// seqcheck's write-section obligations, rcucheck's publisher functions)
// additionally implement Collect, which runs over every package before any
// per-package Run starts and deposits cross-function facts in ModuleFacts.
type Analyzer struct {
	Name string
	Doc  string
	// PathPrefixes restricts the analyzer to packages whose import path
	// starts with one of these prefixes. Empty means every package.
	PathPrefixes []string
	// Collect, if set, is the module-wide fact pass: it sees every loaded
	// package (it must filter by AppliesTo itself if scoped) and runs
	// single-threaded before the parallel per-package Run phase. Facts are
	// read-only once Run starts.
	Collect func(pkgs []*Package, facts *ModuleFacts)
	Run     func(*Pass)
}

// AppliesTo reports whether the analyzer covers the given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.PathPrefixes) == 0 {
		return true
	}
	for _, p := range a.PathPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Facts is the module-wide fact layer populated by the Collect phase;
	// read-only during Run.
	Facts  *ModuleFacts
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.ObjectOf(id) }

// TypeOf returns the static type of e, or nil. The Package-level form
// exists so the Collect (fact) phase can resolve types without a Pass.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Package) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Diagnostic is one finding, ordered by position for stable output.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// JSON renders the diagnostic as one JSON object (NDJSON-style output for
// -json): {"file":..., "line":..., "col":..., "analyzer":..., "message":...}.
func (d Diagnostic) JSON() string {
	out, err := json.Marshal(struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
	if err != nil {
		// A flat struct of strings and ints cannot fail to marshal.
		panic(err)
	}
	return string(out)
}

// ignoreKey identifies one suppressed (file, line, analyzer) site.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreDirective is one //lint:ignore comment. used flips to true the
// first time it suppresses a diagnostic; directives that stay unused are
// themselves reported so stale annotations can't accumulate.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	used     bool
}

// ignoreSet holds one package's directives, indexed by the (file, line,
// analyzer) sites they cover. Each directive covers its own line and the
// line directly below it (so it can sit above the flagged statement or
// trail it).
type ignoreSet struct {
	directives []*ignoreDirective
	byKey      map[ignoreKey]*ignoreDirective
}

// suppress reports whether d is covered by a directive, marking it used.
func (s *ignoreSet) suppress(d Diagnostic) bool {
	dir := s.byKey[ignoreKey{file: d.Pos.Filename, line: d.Pos.Line, analyzer: d.Analyzer}]
	if dir == nil {
		return false
	}
	dir.used = true
	return true
}

// collectIgnores scans a package's comments for lint:ignore directives:
//
//	//lint:ignore <analyzer> <reason>
//
// A missing reason is itself reported as a diagnostic.
func collectIgnores(pkg *Package, report func(Diagnostic)) *ignoreSet {
	set := &ignoreSet{byKey: make(map[ignoreKey]*ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					report(Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed lint:ignore directive: need \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				dir := &ignoreDirective{pos: pos, analyzer: fields[0]}
				set.directives = append(set.directives, dir)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set.byKey[ignoreKey{file: pos.Filename, line: line, analyzer: fields[0]}] = dir
				}
			}
		}
	}
	return set
}

// auditIgnores reports directives that suppressed nothing. A directive
// naming an analyzer that is registered but not enabled for this run
// (e.g. under -disable, or in single-analyzer fixture tests) is skipped:
// we can't tell whether it would have matched. A directive naming an
// analyzer that doesn't exist at all is always an error.
func auditIgnores(set *ignoreSet, enabled []*Analyzer, report func(Diagnostic)) {
	enabledNames := make(map[string]bool, len(enabled))
	for _, a := range enabled {
		enabledNames[a.Name] = true
	}
	registered := make(map[string]bool, len(allAnalyzers))
	for _, a := range allAnalyzers {
		registered[a.Name] = true
	}
	for _, dir := range set.directives {
		switch {
		case !registered[dir.analyzer]:
			report(Diagnostic{
				Analyzer: "lint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("lint:ignore names unknown analyzer %q", dir.analyzer),
			})
		case enabledNames[dir.analyzer] && !dir.used:
			report(Diagnostic{
				Analyzer: "lint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("unused lint:ignore directive: no %s diagnostic here to suppress", dir.analyzer),
			})
		}
	}
}

// RunAnalyzers applies every enabled analyzer to every package and returns
// surviving diagnostics sorted by position. Analyzers with a Collect hook
// first run their module-wide fact pass sequentially over every package;
// the per-package analysis phase then fans out across GOMAXPROCS workers
// (packages are immutable by that point, facts are read-only, and each
// package's diagnostics and ignore bookkeeping are package-local, so the
// only shared write is the mutex-guarded result append).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := newModuleFacts()
	for _, a := range analyzers {
		if a.Collect != nil {
			a.Collect(pkgs, facts)
		}
	}

	var (
		mu    sync.Mutex
		diags []Diagnostic
	)
	addAll := func(ds []Diagnostic) {
		mu.Lock()
		diags = append(diags, ds...)
		mu.Unlock()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan *Package)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pkg := range jobs {
				var local []Diagnostic
				ignores := collectIgnores(pkg, func(d Diagnostic) { local = append(local, d) })
				for _, a := range analyzers {
					if !a.AppliesTo(pkg.Path) {
						continue
					}
					pass := &Pass{
						Analyzer: a,
						Pkg:      pkg,
						Facts:    facts,
						report: func(d Diagnostic) {
							if ignores.suppress(d) {
								return
							}
							local = append(local, d)
						},
					}
					a.Run(pass)
				}
				auditIgnores(ignores, analyzers, func(d Diagnostic) { local = append(local, d) })
				addAll(local)
			}
		}()
	}
	for _, pkg := range pkgs {
		jobs <- pkg
	}
	close(jobs)
	wg.Wait()

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// isPkgFunc reports whether call is a call of pkgPath.name (package-level
// function), resolved through the type checker so aliases and renamed
// imports are handled.
func isPkgFunc(p *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	return isPkgFuncIn(p.Pkg, call, pkgPath, name)
}

// isPkgFuncIn is the Package-level form of isPkgFunc, usable from the
// Collect phase where no Pass exists.
func isPkgFuncIn(p *Package, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Same-package call: plain identifier.
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.ObjectOf(id)
		return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
	}
	obj := p.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isField := obj.(*types.Var); isField {
		return false
	}
	return obj.Name() == name && obj.Pkg().Path() == pkgPath
}
