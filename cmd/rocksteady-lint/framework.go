package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Analyzers are purely intra-procedural
// and run independently per package.
type Analyzer struct {
	Name string
	Doc  string
	// PathPrefixes restricts the analyzer to packages whose import path
	// starts with one of these prefixes. Empty means every package.
	PathPrefixes []string
	Run          func(*Pass)
}

// AppliesTo reports whether the analyzer covers the given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.PathPrefixes) == 0 {
		return true
	}
	for _, p := range a.PathPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Diagnostic is one finding, ordered by position for stable output.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// ignoreKey identifies one suppressed (file, line, analyzer) site.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// collectIgnores scans a package's comments for lint:ignore directives:
//
//	//lint:ignore <analyzer> <reason>
//
// The directive suppresses diagnostics from <analyzer> on its own line and
// on the line directly below it (so it can sit above the flagged statement
// or trail it). A missing reason is itself reported as a diagnostic.
func collectIgnores(pkg *Package, report func(Diagnostic)) map[ignoreKey]bool {
	ignores := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					report(Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed lint:ignore directive: need \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					ignores[ignoreKey{file: pos.Filename, line: line, analyzer: fields[0]}] = true
				}
			}
		}
	}
	return ignores
}

// RunAnalyzers applies every enabled analyzer to every package and returns
// surviving diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg, func(d Diagnostic) { diags = append(diags, d) })
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report: func(d Diagnostic) {
					if ignores[ignoreKey{file: d.Pos.Filename, line: d.Pos.Line, analyzer: d.Analyzer}] {
						return
					}
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// isPkgFunc reports whether call is a call of pkgPath.name (package-level
// function), resolved through the type checker so aliases and renamed
// imports are handled.
func isPkgFunc(p *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Same-package call: plain identifier.
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.ObjectOf(id)
		return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
	}
	obj := p.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isField := obj.(*types.Var); isField {
		return false
	}
	return obj.Name() == name && obj.Pkg().Path() == pkgPath
}
