// Command rocksteady-lint is the repository's invariant-enforcing static
// analyzer. It machine-checks the ownership, latency, and concurrency
// contracts the Go compiler cannot: pooled wire buffers released exactly
// once on every path, no sleep-polling in the dispatch/migration layers,
// no blocking sends under a mutex, no silently dropped errors on the hot
// path, context-first RPC signatures — and, for the lock-free read/write
// paths, no mixed atomic/plain access, seqlock mutations only inside
// stripe write sections, no mutation of RCU-published memory, and no
// obvious allocations in //lint:hotpath functions.
//
// Usage:
//
//	rocksteady-lint [-disable=name,name] [-json] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit status
// is 0 when clean, 1 when diagnostics were reported, 2 on usage or load
// errors. Individual findings are suppressed with an adjacent
// //lint:ignore <analyzer> <reason> comment; a directive that stops
// matching any diagnostic is itself reported, so suppressions cannot go
// stale. -json emits one JSON object per diagnostic (file, line, col,
// analyzer, message) for machine consumers.
//
// The tool is stdlib-only (go/parser + go/types + go/ast): it loads
// module packages from source and resolves the standard library through
// compiled export data (falling back to source), so it runs offline with
// no dependency beyond the Go toolchain itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

var allAnalyzers = []*Analyzer{
	poolcheckAnalyzer,
	nopollAnalyzer,
	lockholdAnalyzer,
	errdropAnalyzer,
	ctxcheckAnalyzer,
	atomiccheckAnalyzer,
	seqcheckAnalyzer,
	rcucheckAnalyzer,
	hotallocAnalyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rocksteady-lint", flag.ContinueOnError)
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic instead of text")
	list := fs.Bool("list", false, "print the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: rocksteady-lint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range allAnalyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	disabled := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	known := make(map[string]bool)
	var analyzers []*Analyzer
	for _, a := range allAnalyzers {
		known[a.Name] = true
		if !disabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	for name := range disabled {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "rocksteady-lint: unknown analyzer %q in -disable\n", name)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rocksteady-lint: %v\n", err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rocksteady-lint: %v\n", err)
		return 2
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rocksteady-lint: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags := RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		if *jsonOut {
			fmt.Println(d.JSON())
		} else {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rocksteady-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
