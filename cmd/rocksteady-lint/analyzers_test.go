package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture packages under testdata carry expected-diagnostic comments:
//
//	stmt() // want:poolcheck "fragment of the message"
//
// want-next expects the diagnostic on the line below the comment (used when
// the flagged line cannot carry a second comment, e.g. a lint:ignore
// directive that is itself diagnosed as malformed).
var wantRe = regexp.MustCompile(`//\s*want(-next)?:(\w+)\s+"([^"]*)"`)

type wantDiag struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
}

var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

// fixtureLoader shares one Loader (and its stdlib export-data cache) across
// subtests.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		testLoader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return testLoader
}

func fixtureFiles(t *testing.T, dir string) []string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	files, err := nonTestGoFiles(abs)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", abs)
	}
	return files
}

func parseWants(t *testing.T, files []string) []wantDiag {
	t.Helper()
	var wants []wantDiag
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			ln := i + 1
			if m[1] == "-next" {
				ln++
			}
			wants = append(wants, wantDiag{file: filepath.Base(f), line: ln, analyzer: m[2], substr: m[3]})
		}
	}
	return wants
}

// TestAnalyzers runs each analyzer over its fixture package and requires an
// exact bidirectional match between planted want comments and emitted
// diagnostics: every want must be found at its file:line with the expected
// message fragment, and no diagnostic may appear without a want.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string
		// importPath places the fixture where the analyzer's PathPrefixes
		// (if any) apply.
		importPath string
	}{
		{poolcheckAnalyzer, "poolcheck", "rocksteady/lintfixture/poolcheck"},
		{nopollAnalyzer, "nopoll", "rocksteady/internal/core/nopollfixture"},
		{lockholdAnalyzer, "lockhold", "rocksteady/lintfixture/lockhold"},
		{errdropAnalyzer, "errdrop", "rocksteady/internal/server/errdropfixture"},
		{ctxcheckAnalyzer, "ctxcheck", "rocksteady/lintfixture/ctxcheck"},
		{atomiccheckAnalyzer, "atomiccheck", "rocksteady/lintfixture/atomiccheck"},
		{seqcheckAnalyzer, "seqcheck", "rocksteady/internal/storage/seqcheckfixture"},
		{rcucheckAnalyzer, "rcucheck", "rocksteady/lintfixture/rcucheck"},
		{hotallocAnalyzer, "hotalloc", "rocksteady/lintfixture/hotalloc"},
		// The stale-suppression audit rides along with whichever analyzers a
		// run enables; its fixture is checked with only hotalloc on.
		{hotallocAnalyzer, "unusedignore", "rocksteady/lintfixture/unusedignore"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			l := fixtureLoader(t)
			dir := filepath.Join("testdata", tc.fixture)
			files := fixtureFiles(t, dir)
			pkg, err := l.LoadFiles(tc.importPath, dir, files)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{tc.analyzer})
			wants := parseWants(t, files)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", tc.fixture)
			}
			matched := make([]bool, len(diags))
		outer:
			for _, w := range wants {
				for i, d := range diags {
					if matched[i] {
						continue
					}
					if filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line &&
						d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
						matched[i] = true
						continue outer
					}
				}
				t.Errorf("missing diagnostic: %s:%d [%s] containing %q", w.file, w.line, w.analyzer, w.substr)
			}
			for i, d := range diags {
				if !matched[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

// TestAppliesTo pins the hot-path scoping: path-restricted analyzers must
// cover exactly the latency-critical packages.
func TestAppliesTo(t *testing.T) {
	for _, a := range []*Analyzer{nopollAnalyzer, errdropAnalyzer} {
		for _, path := range []string{
			"rocksteady/internal/core",
			"rocksteady/internal/dispatch",
			"rocksteady/internal/transport",
			"rocksteady/internal/server",
		} {
			if !a.AppliesTo(path) {
				t.Errorf("%s should apply to %s", a.Name, path)
			}
		}
		for _, path := range []string{
			"rocksteady/internal/cluster",
			"rocksteady/internal/corelike", // prefix match must be segment-aware
			"rocksteady/cmd/rocksteady-lint",
		} {
			if a.AppliesTo(path) {
				t.Errorf("%s should not apply to %s", a.Name, path)
			}
		}
	}
	for _, path := range []string{
		"rocksteady/internal/storage",
		"rocksteady/internal/storage/seqcheckfixture",
	} {
		if !seqcheckAnalyzer.AppliesTo(path) {
			t.Errorf("seqcheck should apply to %s", path)
		}
	}
	for _, path := range []string{
		"rocksteady/internal/storagelike", // prefix match must be segment-aware
		"rocksteady/internal/server",
	} {
		if seqcheckAnalyzer.AppliesTo(path) {
			t.Errorf("seqcheck should not apply to %s", path)
		}
	}
	for _, a := range []*Analyzer{
		poolcheckAnalyzer, lockholdAnalyzer, ctxcheckAnalyzer,
		atomiccheckAnalyzer, rcucheckAnalyzer, hotallocAnalyzer,
	} {
		if !a.AppliesTo("rocksteady/internal/cluster") {
			t.Errorf("%s should apply module-wide", a.Name)
		}
	}
}

// TestDiagnosticFormat pins the shared file:line:col: [analyzer] message
// output format that editors and CI grep for.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{Analyzer: "poolcheck", Message: "b leaks"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 7
	d.Pos.Column = 3
	if got, want := d.String(), "x.go:7:3: [poolcheck] b leaks"; got != want {
		t.Errorf("Diagnostic.String() = %q, want %q", got, want)
	}
}

// TestDiagnosticJSON pins the -json NDJSON shape machine consumers (the CI
// problem matcher's sibling tooling) parse.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{Analyzer: "rcucheck", Message: `mutation through "tm"`}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 7
	d.Pos.Column = 3
	want := `{"file":"x.go","line":7,"col":3,"analyzer":"rcucheck","message":"mutation through \"tm\""}`
	if got := d.JSON(); got != want {
		t.Errorf("Diagnostic.JSON() = %s, want %s", got, want)
	}
}

// TestCleanTree runs every analyzer over the real module and requires zero
// findings: the tree stays lint-clean, with deliberate exceptions carrying
// lint:ignore annotations.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	l := fixtureLoader(t)
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, d := range RunAnalyzers(pkgs, allAnalyzers) {
		t.Errorf("finding in tree: %s", d)
	}
}
