package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// rcucheck enforces the copy-on-write discipline of RCU-style publication
// (the tabletMap pattern): once a pointer has been published through
// atomic.Pointer.Store/Swap/CompareAndSwap, the memory it points to is
// frozen — lock-free readers are walking it with no lock and no sequence
// to retry on. Writers must clone, mutate the clone, then publish.
//
// The analyzer tracks, per function in source order, which variables hold
// published memory:
//
//   - the result of an atomic.Pointer Load, or of any function the
//     module-wide fact layer identified as returning one (e.g. a
//     tabletSnapshot() helper defined in another file);
//   - a value passed to Store/Swap (or as CompareAndSwap's new value),
//     including values reachable from a composite literal handed to
//     Store, and variables whose address was published (&v);
//   - aliases: assigning a published variable, or taking the address of a
//     path rooted at one, taints the destination.
//
// Through any published variable it flags field/element assignments,
// ++/--, and delete. Reads, taking addresses, and method calls stay legal
// — the hash table's overflow-bucket publish relies on method-level
// mutation that the seqlock write section makes safe, and seqcheck (not
// this analyzer) owns that protocol.
var rcucheckAnalyzer = &Analyzer{
	Name:    "rcucheck",
	Doc:     "no mutation through a pointer published via atomic.Pointer; clone-then-store",
	Collect: collectRCU,
	Run:     runRCU,
}

// collectRCU finds "source" functions: a caller of one receives published
// memory exactly as if it had called Load itself. The fixpoint follows
// wrappers of wrappers.
func collectRCU(pkgs []*Package, facts *ModuleFacts) {
	for changed := true; changed; {
		changed = false
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fnObj := pkg.Info.Defs[fd.Name]
					if fnObj == nil || facts.RCUSources[fnObj] {
						continue
					}
					sig, ok := fnObj.Type().(*types.Signature)
					if !ok || sig.Results().Len() != 1 {
						continue
					}
					if returnsPublished(pkg, fd, facts.RCUSources) {
						facts.RCUSources[fnObj] = true
						changed = true
					}
				}
			}
		}
	}
}

// returnsPublished reports whether some return statement hands back the
// result of an atomic.Pointer Load or of a known source function.
func returnsPublished(pkg *Package, fd *ast.FuncDecl, sources map[types.Object]bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		call, ok := ret.Results[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPointerLoad(pkg, call) {
			found = true
		}
		if obj := calleeObj(pkg, call); obj != nil && sources[obj] {
			found = true
		}
		return true
	})
	return found
}

// isPointerLoad reports whether call is x.Load() on an atomic.Pointer.
func isPointerLoad(pkg *Package, call *ast.CallExpr) bool {
	recv, method, ok := atomicMethodOn(pkg, call)
	if !ok || method != "Load" {
		return false
	}
	name, _ := isAtomicNamed(pkg.TypeOf(recv))
	return name == "Pointer"
}

// how a variable came to hold published memory.
const (
	pubLoaded     = iota // result of Load / a source function
	pubStored            // the variable's value was published
	pubStoredAddr        // the variable's *address* was published
	pubAlias             // assigned from / points into a published variable
)

type pubInfo struct {
	how int
	pos token.Pos // the publish site, named in diagnostics
}

func runRCU(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				rcuScanFunc(pass, fd)
			}
		}
	}
}

func rcuScanFunc(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	published := make(map[types.Object]pubInfo)

	at := func(pos token.Pos) string { return pkg.Fset.Position(pos).String() }
	baseObj := func(e ast.Expr) (types.Object, pubInfo, bool) {
		id := baseIdentOf(e)
		if id == nil {
			return nil, pubInfo{}, false
		}
		obj := pkg.ObjectOf(id)
		info, ok := published[obj]
		return obj, info, ok
	}

	// publishArg marks the value handed to Store/Swap/CAS as published:
	// a bare variable, an &variable, or every variable reachable from a
	// composite literal.
	var publishArg func(arg ast.Expr, pos token.Pos)
	publishArg = func(arg ast.Expr, pos token.Pos) {
		switch a := arg.(type) {
		case *ast.Ident:
			if obj := pkg.ObjectOf(a); obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					published[obj] = pubInfo{how: pubStored, pos: pos}
				}
			}
		case *ast.UnaryExpr:
			if a.Op != token.AND {
				return
			}
			if id, ok := a.X.(*ast.Ident); ok {
				if obj := pkg.ObjectOf(id); obj != nil {
					published[obj] = pubInfo{how: pubStoredAddr, pos: pos}
				}
				return
			}
			publishArg(a.X, pos)
		case *ast.CompositeLit:
			for _, elt := range a.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					publishArg(kv.Value, pos)
					continue
				}
				publishArg(elt, pos)
			}
		case *ast.ParenExpr:
			publishArg(a.X, pos)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				rcuAssign(pass, published, lhs, rhs, at)
			}
		case *ast.IncDecStmt:
			if obj, info, ok := baseObj(n.X); ok {
				if _, isIdent := n.X.(*ast.Ident); !isIdent || info.how == pubStoredAddr {
					pass.Reportf(n.Pos(), "mutation through %s, which holds RCU-published memory (published at %s); clone-then-store instead", obj.Name(), at(info.pos))
				}
			}
		case *ast.CallExpr:
			// Publications.
			if recv, method, ok := atomicMethodOn(pkg, n); ok {
				if name, _ := isAtomicNamed(pkg.TypeOf(recv)); name == "Pointer" {
					switch method {
					case "Store", "Swap":
						if len(n.Args) >= 1 {
							publishArg(n.Args[0], n.Pos())
						}
					case "CompareAndSwap":
						if len(n.Args) >= 2 {
							publishArg(n.Args[1], n.Pos())
						}
					}
				}
				return true
			}
			// delete(m, k) through a published root mutates published
			// memory just like an index assignment.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if _, isBuiltin := pkg.ObjectOf(id).(*types.Builtin); isBuiltin {
					if obj, info, ok := baseObj(n.Args[0]); ok {
						pass.Reportf(n.Pos(), "delete through %s, which holds RCU-published memory (published at %s); clone-then-store instead", obj.Name(), at(info.pos))
					}
				}
			}
		}
		return true
	})
}

// rcuAssign handles one lhs (= or :=) pair: flag writes through published
// memory, then update the taint state from the rhs.
func rcuAssign(pass *Pass, published map[types.Object]pubInfo, lhs, rhs ast.Expr, at func(token.Pos) string) {
	pkg := pass.Pkg

	switch l := lhs.(type) {
	case *ast.Ident:
		obj := pkg.ObjectOf(l)
		if obj == nil {
			break
		}
		if info, ok := published[obj]; ok {
			if info.how == pubStoredAddr {
				// The variable's address is what readers hold: assigning
				// to it rewrites the published value in place.
				pass.Reportf(lhs.Pos(), "write to %s after its address was published via atomic.Pointer (at %s); the published value changes under readers — clone-then-store instead", obj.Name(), at(info.pos))
				return
			}
			// Rebinding an ordinary published variable just drops the
			// taint; the published memory itself is untouched.
			delete(published, obj)
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if id := baseIdentOf(lhs); id != nil {
			obj := pkg.ObjectOf(id)
			if info, ok := published[obj]; ok {
				pass.Reportf(lhs.Pos(), "mutation through %s, which holds RCU-published memory (published at %s); clone-then-store instead", obj.Name(), at(info.pos))
				return
			}
		}
	}

	// Taint updates from the rhs, onto plain-ident destinations.
	dest, ok := lhs.(*ast.Ident)
	if !ok || rhs == nil {
		return
	}
	destObj := pkg.ObjectOf(dest)
	if destObj == nil {
		return
	}
	switch r := rhs.(type) {
	case *ast.CallExpr:
		if isPointerLoad(pkg, r) {
			published[destObj] = pubInfo{how: pubLoaded, pos: r.Pos()}
			return
		}
		if obj := calleeObj(pkg, r); obj != nil && pass.Facts.RCUSources[obj] {
			published[destObj] = pubInfo{how: pubLoaded, pos: r.Pos()}
			return
		}
	case *ast.Ident:
		if obj := pkg.ObjectOf(r); obj != nil {
			if info, ok := published[obj]; ok {
				published[destObj] = pubInfo{how: pubAlias, pos: info.pos}
				return
			}
		}
	case *ast.UnaryExpr:
		if r.Op == token.AND {
			if id := baseIdentOf(r.X); id != nil {
				if info, ok := published[pkg.ObjectOf(id)]; ok {
					published[destObj] = pubInfo{how: pubAlias, pos: info.pos}
					return
				}
			}
		}
	}
}
