package main

import (
	"go/ast"
)

// nopoll keeps sleep-polling out of the latency-critical layers. The whole
// point of the Rocksteady port is that migration must not add tail latency
// (§3); PR 1 replaced every sleep-poll in the dispatch/migration path with
// event-driven channels, and this analyzer stops them from coming back.
//
// Flagged inside internal/core, internal/dispatch, internal/transport, and
// internal/server:
//
//   - any call to time.Sleep (the model sleeps in the fabric's bandwidth
//     simulation carry //lint:ignore annotations explaining themselves)
//   - runtime.Gosched, which only ever appears as a yield inside a spin
//     loop
//   - a for-loop with an empty body (a pure spin-wait)
var nopollAnalyzer = &Analyzer{
	Name: "nopoll",
	Doc:  "no sleep-polls or busy-wait loops in the dispatch/migration hot path",
	PathPrefixes: []string{
		"rocksteady/internal/core",
		"rocksteady/internal/dispatch",
		"rocksteady/internal/transport",
		"rocksteady/internal/server",
	},
	Run: runNopoll,
}

func runNopoll(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass, n, "time", "Sleep") {
					pass.Reportf(n.Pos(), "time.Sleep in a hot-path package: use event-driven waiting (channels, sync.Cond) instead of polling")
				}
				if isPkgFunc(pass, n, "runtime", "Gosched") {
					pass.Reportf(n.Pos(), "runtime.Gosched in a hot-path package: yielding spin loops poll the scheduler; block on an event instead")
				}
			case *ast.ForStmt:
				if len(n.Body.List) == 0 {
					pass.Reportf(n.Pos(), "empty for-loop body is a busy-wait: block on an event instead")
				}
			}
			return true
		})
	}
}
