// Command rocksteady-bench regenerates the paper's evaluation figures
// (§4) on the in-process cluster and prints the same rows/series the
// paper plots. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	rocksteady-bench -experiment fig9 -objects 1000000 -seconds 30
//	rocksteady-bench -experiment all -quick
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"

	"rocksteady/internal/bench"
)

func main() {
	var (
		experiment  = flag.String("experiment", "headline", "fig3|fig4|fig5|fig9|fig10|fig11|fig12|fig13|fig14|fig15|ablation|cleaner|headline|all")
		objects     = flag.Int("objects", 0, "records in the table under test (default 300000)")
		seconds     = flag.Int("seconds", 0, "measured seconds per experiment (default 10)")
		clients     = flag.Int("clients", 0, "closed-loop load generator goroutines (default 8)")
		workers     = flag.Int("workers", 0, "worker cores per server (default 8)")
		theta       = flag.Float64("theta", 0, "Zipfian skew for YCSB runs (default 0.99)")
		replication = flag.Int("replication", 0, "replication factor (default: per-experiment)")
		netbw       = flag.Float64("netbw", 0, "NIC bandwidth bytes/sec (default unlimited)")
		samplems    = flag.Int("samplems", 0, "timeline sampling interval in ms (default 1000)")
		quick       = flag.Bool("quick", false, "small fast run (CI-sized)")
		verbose     = flag.Bool("v", true, "print progress lines")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = off")
	)
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	p := bench.DefaultParams()
	if *quick {
		p.Objects = 50_000
		p.Seconds = 4
		p.Clients = 4
	}
	if *objects > 0 {
		p.Objects = *objects
	}
	if *seconds > 0 {
		p.Seconds = *seconds
	}
	if *clients > 0 {
		p.Clients = *clients
	}
	if *workers > 0 {
		p.Workers = *workers
	}
	if *theta != 0 {
		p.Theta = *theta
	}
	if *replication > 0 {
		p.ReplicationFactor = *replication
	}
	if *netbw > 0 {
		p.NetworkBandwidth = *netbw
	}
	if *samplems > 0 {
		p.SampleMillis = *samplems
	}
	if *verbose {
		p.Out = os.Stderr
	}

	run := func(name string) error {
		switch name {
		case "fig3":
			return runFig3(p)
		case "fig4":
			return runFig4(p)
		case "fig5":
			return runFig5(p)
		case "fig9", "fig10", "fig11":
			return runFig9(p, name)
		case "fig12":
			return runFig12(p)
		case "fig13", "fig14":
			return runFig13(p, name)
		case "fig15":
			return runFig15(p)
		case "ablation":
			return runAblation(p)
		case "cleaner":
			return runCleaner(p)
		case "headline":
			return runHeadline(p)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"fig3", "fig4", "fig5", "fig9", "fig12", "fig13", "fig15", "ablation", "cleaner", "headline"}
	}
	for _, name := range names {
		fmt.Printf("\n================ %s ================\n", name)
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func runFig3(p bench.Params) error {
	rows, err := bench.Fig3MultigetSpread(p)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3: multiget locality (7-key multigets, 7 servers)")
	fmt.Printf("%-8s %14s %16s %14s %18s\n", "spread", "Mobjects/s", "dispatch load", "worker load", "single-server ref")
	for _, r := range rows {
		fmt.Printf("%-8d %14.2f %16.2f %14.2f %18.2f\n",
			r.Spread, r.MObjectsPerSec, r.DispatchLoad, r.WorkerLoad, r.SingleServerRef)
	}
	if len(rows) >= 7 && rows[6].MObjectsPerSec > 0 {
		fmt.Printf("locality gain (spread 1 vs 7): %.1fx\n", rows[0].MObjectsPerSec/rows[6].MObjectsPerSec)
	}
	return nil
}

func runFig4(p bench.Params) error {
	pts, err := bench.Fig4IndexScaling(p)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: index scaling (4-record scans, Zipfian θ=0.5 start keys)")
	fmt.Printf("%-26s %8s %14s %12s %12s %14s\n", "config", "clients", "kobjects/s", "median µs", "p99.9 µs", "dispatch load")
	for _, pt := range pts {
		fmt.Printf("%-26s %8d %14.1f %12.1f %12.1f %14.2f\n",
			pt.Config, pt.Clients, pt.KObjectsPerSec, pt.MedianMicros, pt.P999Micros, pt.DispatchLoad)
	}
	return nil
}

func runFig5(p bench.Params) error {
	series, err := bench.Fig5BaselineBreakdown(p)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: bottlenecks of log-replay (pre-existing) migration")
	fmt.Printf("%-24s %12s %10s\n", "variant", "MB/s", "seconds")
	for _, s := range series {
		fmt.Printf("%-24s %12.1f %10.2f\n", s.Variant, s.MeanMBps, s.Seconds)
	}
	return nil
}

func runFig9(p bench.Params, which string) error {
	for _, v := range []bench.Variant{bench.VariantRocksteady, bench.VariantNoPriorityPulls, bench.VariantSourceRetains} {
		res, err := bench.Fig9MigrationImpact(p, v)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s (%s) ---\n", which, v)
		switch which {
		case "fig9":
			fmt.Printf("%-7s %12s %10s %s\n", "t(s)", "kops/s", "mig MB", "phase")
			for _, pt := range res.Points {
				fmt.Printf("%-7.2f %12.1f %10.1f %s\n", pt.At, pt.ThroughputKops, pt.MigratedMB, pt.Phase)
			}
		case "fig10":
			fmt.Printf("%-7s %12s %12s %s\n", "t(s)", "median µs", "p99.9 µs", "phase")
			for _, pt := range res.Points {
				fmt.Printf("%-7.2f %12.1f %12.1f %s\n", pt.At, pt.MedianMicros, pt.P999Micros, pt.Phase)
			}
		case "fig11":
			fmt.Printf("%-5s %9s %9s %9s %9s %s\n", "sec", "srcDisp", "dstDisp", "srcWork", "dstWork", "phase")
			for _, pt := range res.Points {
				fmt.Printf("%-5d %9.2f %9.2f %9.2f %9.2f %s\n", pt.Second,
					pt.SourceDispatch, pt.TargetDispatch, pt.SourceWorkers, pt.TargetWorkers, pt.Phase)
			}
		}
		fmt.Printf("migration: %s\n", res.Migration)
	}
	return nil
}

func runFig12(p bench.Params) error {
	series, err := bench.Fig12SkewImpact(p, nil)
	if err != nil {
		return err
	}
	fmt.Println("Figure 12: source dispatch load vs workload skew")
	fmt.Printf("%-8s %18s %18s %12s %12s\n", "theta", "dispatch before", "dispatch during", "MB moved", "seconds")
	for _, s := range series {
		fmt.Printf("%-8.2f %18.2f %18.2f %12.1f %12.2f\n",
			s.Theta, s.MeanBefore, s.MeanDuringMigration,
			float64(s.Migration.BytesPulled)/1e6, s.Migration.Duration().Seconds())
	}
	return nil
}

func runFig13(p bench.Params, which string) error {
	for _, mode := range []bench.Fig13Mode{bench.ModeAsyncBatched, bench.ModeSyncSingle} {
		res, err := bench.Fig13PriorityPullStrategies(p, mode)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s (%s, %d PriorityPull RPCs) ---\n", which, mode, res.PriorityPullRPCs)
		if which == "fig13" {
			fmt.Printf("%-5s %12s %12s %s\n", "sec", "median µs", "p99.9 µs", "phase")
			for _, pt := range res.Points {
				fmt.Printf("%-5d %12.1f %12.1f %s\n", pt.Second, pt.MedianMicros, pt.P999Micros, pt.Phase)
			}
		} else {
			fmt.Printf("%-5s %9s %9s %9s %9s %s\n", "sec", "srcDisp", "dstDisp", "srcWork", "dstWork", "phase")
			for _, pt := range res.Points {
				fmt.Printf("%-5d %9.2f %9.2f %9.2f %9.2f %s\n", pt.Second,
					pt.SourceDispatch, pt.TargetDispatch, pt.SourceWorkers, pt.TargetWorkers, pt.Phase)
			}
		}
	}
	return nil
}

func runFig15(p bench.Params) error {
	pts, err := bench.Fig15PullReplayScalability(p, nil, nil)
	if err != nil {
		return err
	}
	fmt.Println("Figure 15: pull/replay scalability (isolated engines)")
	fmt.Printf("%-8s %12s %10s %12s\n", "side", "object size", "threads", "GB/s")
	for _, pt := range pts {
		fmt.Printf("%-8s %12d %10d %12.2f\n", pt.Side, pt.ObjectSize, pt.Threads, pt.GBPerSec)
	}
	return nil
}

func runAblation(p bench.Params) error {
	rows, err := bench.AblationLineageAndSideLogs(p)
	if err != nil {
		return err
	}
	fmt.Println("Ablation: lineage-deferred re-replication and side logs")
	fmt.Printf("%-50s %10s %12s\n", "variant", "MB/s", "full-is-x")
	for _, r := range rows {
		fmt.Printf("%-50s %10.1f %12.2f\n", r.Name, r.MigrationMBps, r.SpeedupVsFull)
	}
	return nil
}

func runCleaner(p bench.Params) error {
	rows, err := bench.CleanerUtilization(p, nil)
	if err != nil {
		return err
	}
	fmt.Println("Log cleaner: write amplification vs memory utilization (§2)")
	fmt.Printf("%-14s %20s %10s\n", "utilization", "write amplification", "passes")
	for _, r := range rows {
		fmt.Printf("%-14.2f %20.2f %10d\n", r.Utilization, r.WriteAmplification, r.CleanerPasses)
	}
	return nil
}

func runHeadline(p bench.Params) error {
	h, err := bench.Headline(p)
	if err != nil {
		return err
	}
	fmt.Println("Headline (§4.2): migration speed and latency impact")
	fmt.Printf("migration: %d records, %.1f MB/s, %v\n", h.RecordsMigrated, h.MigrationMBps, h.MigrationTime)
	fmt.Printf("%-12s %14s %14s %14s\n", "phase", "median µs", "p99.9 µs", "kops/s")
	fmt.Printf("%-12s %14.1f %14.1f %14.1f\n", "before", h.MedianBefore, h.P999Before, h.ThroughputBeforeKops)
	fmt.Printf("%-12s %14.1f %14.1f %14.1f\n", "migrating", h.MedianDuring, h.P999During, h.ThroughputDuringKops)
	fmt.Printf("%-12s %14.1f %14.1f\n", "after", h.MedianAfter, h.P999After)
	return nil
}
