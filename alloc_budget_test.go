//go:build !race

package rocksteady_test

import (
	"testing"

	"rocksteady/internal/storage"
	"rocksteady/internal/wire"
)

// TestHotpathAllocBudgets pins the RPC hot-path allocation budgets from
// BENCH_hotpath.json so a regression fails tests, not just the report-only
// bench job. Gated off the race builds: the race runtime adds bookkeeping
// allocations that would make the strict budgets flaky.
//
// The storage-layer counterpart — HashTable.Get at 0 allocs/op — is
// TestSeqlockGetZeroAllocs in internal/storage; the scheduler's
// enqueue→pickup fast path at 0 allocs/op is TestEnqueuePickupZeroAlloc in
// internal/dispatch.
func TestHotpathAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budgets need full benchmark runs")
	}
	cases := []struct {
		name   string
		fn     func(*testing.B)
		budget int64
	}{
		{"MarshalRoundtrip", benchmarkMarshalRoundtrip, 2},
		{"TCPSend", benchmarkTCPSend, 2},
		{"PullPath", benchmarkPullPath, 18},
		// A write RPC end to end: the 17 steady-state allocations are the
		// RPC plumbing (frames, reply futures, dispatch closure) — the log
		// append itself reuses the shard head's segment, and one spare is
		// left for the amortized segment roll.
		{"PutPath", benchmarkPutPath, 18},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := testing.Benchmark(c.fn)
			if got := r.AllocsPerOp(); got > c.budget {
				t.Errorf("%s allocates %d/op, budget %d", c.name, got, c.budget)
			} else {
				t.Logf("%s: %d allocs/op (budget %d)", c.name, got, c.budget)
			}
		})
	}
}

// TestHeatSampledGetZeroAllocs pins the read path with heat tracking at
// zero allocations per op. Sample shift 0 records *every* access — the
// worst case; the production shift of 5 does strictly less work — so a
// Get that both reads the seqlock and bumps a heat bucket must still not
// allocate.
func TestHeatSampledGetZeroAllocs(t *testing.T) {
	l := storage.NewLog(1<<16, nil)
	ht := storage.NewHashTable(1024)
	hm := storage.NewHeatMap(1, 0)
	hm.RegisterTable(1)
	key := []byte("alpha")
	h := wire.HashKey(key)
	ref, _, err := l.AppendObject(1, key, []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	ht.Put(1, key, h, ref)

	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := ht.Get(1, key, h); !ok {
			t.Fatal("Get missed")
		}
		hm.Record(0, 1, h)
	})
	if allocs != 0 {
		t.Fatalf("heat-sampled Get allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkHeatSnapshotAggregation reports (but does not pin — it is off
// the hot path, polled once per rebalancer tick) the cost of folding the
// sharded heat counters into per-table bucket totals: shards × tables ×
// 256 atomic loads plus one slice allocation per snapshot.
func BenchmarkHeatSnapshotAggregation(b *testing.B) {
	const workers, tables = 8, 4
	hm := storage.NewHeatMap(workers, 0)
	for t := wire.TableID(1); t <= tables; t++ {
		hm.RegisterTable(t)
	}
	// Populate every (shard, table, bucket) counter so aggregation sums
	// real values rather than zero-filled cache lines.
	for sh := 0; sh < workers; sh++ {
		for t := wire.TableID(1); t <= tables; t++ {
			for bkt := uint64(0); bkt < storage.HeatBuckets; bkt++ {
				hm.Record(sh, t, bkt<<(64-8))
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := hm.Snapshot(); len(snap) != tables {
			b.Fatalf("snapshot covers %d tables, want %d", len(snap), tables)
		}
	}
}
