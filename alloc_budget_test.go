//go:build !race

package rocksteady_test

import "testing"

// TestHotpathAllocBudgets pins the RPC hot-path allocation budgets from
// BENCH_hotpath.json so a regression fails tests, not just the report-only
// bench job. Gated off the race builds: the race runtime adds bookkeeping
// allocations that would make the strict budgets flaky.
//
// The storage-layer counterpart — HashTable.Get at 0 allocs/op — is
// TestSeqlockGetZeroAllocs in internal/storage; the scheduler's
// enqueue→pickup fast path at 0 allocs/op is TestEnqueuePickupZeroAlloc in
// internal/dispatch.
func TestHotpathAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budgets need full benchmark runs")
	}
	cases := []struct {
		name   string
		fn     func(*testing.B)
		budget int64
	}{
		{"MarshalRoundtrip", benchmarkMarshalRoundtrip, 2},
		{"TCPSend", benchmarkTCPSend, 2},
		{"PullPath", benchmarkPullPath, 18},
		// A write RPC end to end: the 17 steady-state allocations are the
		// RPC plumbing (frames, reply futures, dispatch closure) — the log
		// append itself reuses the shard head's segment, and one spare is
		// left for the amortized segment roll.
		{"PutPath", benchmarkPutPath, 18},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := testing.Benchmark(c.fn)
			if got := r.AllocsPerOp(); got > c.budget {
				t.Errorf("%s allocates %d/op, budget %d", c.name, got, c.budget)
			} else {
				t.Logf("%s: %d allocs/op (budget %d)", c.name, got, c.budget)
			}
		})
	}
}
